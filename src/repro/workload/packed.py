"""Packed trace representation: flat columns instead of per-item objects.

A :class:`PackedTrace` stores one synthetic trace as a handful of flat
``array``/``memoryview`` columns (opcode, pc, operand kinds/values, stack
frame geometry, thread, high-level event payloads) instead of millions of
:class:`~repro.isa.instruction.Instruction` /
:class:`~repro.workload.trace.HighLevelEvent` objects.  This kills the two
functional-work bounds of grid execution:

* **Generation** appends machine integers to columns — no frozen-dataclass
  construction per item (:class:`~repro.workload.generator.TraceGenerator`
  emits packed columns directly).
* **Distribution** is a single buffer: the parallel runner places the
  column bytes in ``multiprocessing.shared_memory`` and workers attach
  zero-copy (:mod:`repro.api.shm`); pickling falls back to one compact
  ``bytes`` payload instead of a per-item object graph.

Consumers that need real objects still get them: ``packed.items`` is a lazy
sequence view that materialises (and caches) the exact ``Instruction`` /
``HighLevelEvent`` an object trace would hold, so monitors, the bug-trace
tooling and user code read a packed trace unchanged.  The hot consumers
(:meth:`repro.cores.retire.RetireModel.schedule` and
:func:`repro.system.simulator.build_plan`) read the columns directly and
never materialise per-item objects on the built-in path.

The column layout is versioned (:data:`TRACE_SCHEMA_VERSION`); the
content-addressed result store keys on it so cached results are invalidated
whenever the packed representation changes meaning.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.isa.instruction import Instruction, Operand, OperandKind
from repro.isa.opcodes import OpClass
from repro.workload.trace import HighLevelEvent, HighLevelKind, Trace, TraceItem

#: Version of the packed column layout.  Bump on any change to the columns,
#: their encoding, or their semantics — the result store includes it in
#: every cache key, so stale cached results can never be served.
TRACE_SCHEMA_VERSION = 1

#: ``kind`` column value for instructions; high-level events are
#: ``1 + HighLevelKind index``.
KIND_INSTRUCTION = 0

#: Stable op-class numbering (enum definition order).
OP_CLASSES: Tuple[OpClass, ...] = tuple(OpClass)
OP_INDEX: Dict[OpClass, int] = {op: index for index, op in enumerate(OP_CLASSES)}

HL_KINDS: Tuple[HighLevelKind, ...] = tuple(HighLevelKind)
HL_INDEX: Dict[HighLevelKind, int] = {
    kind: index for index, kind in enumerate(HL_KINDS)
}

#: Operand-kind codes in the ``flags`` column (2 bits per operand slot).
OPERAND_NONE = 0
OPERAND_REGISTER = 1
OPERAND_MEMORY = 2

#: ``flags`` bit layout: src1 kind (bits 0-1), src2 kind (bits 2-3), dest
#: kind (bits 4-5), depends-on-prev (bit 6), startup (bit 7).
SRC1_SHIFT = 0
SRC2_SHIFT = 2
DEST_SHIFT = 4
DEPENDS_BIT = 0x40
STARTUP_BIT = 0x80

#: Column order and typecodes.  The 8-byte columns come first so every
#: column starts naturally aligned when the columns are concatenated into
#: one buffer (shared-memory segments / pickle payloads).
#:
#: ``f0``-``f5`` carry the per-item payload: for instructions
#: (pc, src1 value, src2 value, dest value, frame base, frame size); for
#: high-level events (address, size, 0, 0, 0, 0).  ``op`` holds the op-class
#: index for instructions and the destination register for high-level
#: events; ``flags``/``thread`` are shared.
COLUMN_SPEC: Tuple[Tuple[str, str], ...] = (
    ("f0", "q"),
    ("f1", "q"),
    ("f2", "q"),
    ("f3", "q"),
    ("f4", "q"),
    ("f5", "q"),
    ("kind", "B"),
    ("op", "B"),
    ("flags", "B"),
    ("thread", "B"),
)

_ITEM_BYTES = sum(array(code).itemsize for _, code in COLUMN_SPEC)

Columns = Dict[str, Union[array, memoryview]]


def _operand_kind_code(operand: Optional[Operand]) -> int:
    if operand is None:
        return OPERAND_NONE
    if operand.kind is OperandKind.REGISTER:
        return OPERAND_REGISTER
    return OPERAND_MEMORY


class PackedTraceBuilder:
    """Column accumulator used by the trace generator (and ``pack_trace``).

    Append-only: ``add_instruction``/``add_high_level`` push one row of
    machine integers; ``build`` freezes the columns into a
    :class:`PackedTrace`.
    """

    __slots__ = ("_columns", "_appends")

    def __init__(self) -> None:
        self._columns: Dict[str, array] = {
            name: array(code) for name, code in COLUMN_SPEC
        }
        columns = self._columns
        # Hoisted bound appends: these run once per generated item.
        self._appends = tuple(
            columns[name].append for name, _ in COLUMN_SPEC
        )

    def add_instruction(
        self,
        pc: int,
        op_index: int,
        src1_kind: int,
        src1_value: int,
        src2_kind: int,
        src2_value: int,
        dest_kind: int,
        dest_value: int,
        thread: int,
        depends: bool,
        frame_base: int = 0,
        frame_size: int = 0,
    ) -> None:
        f0, f1, f2, f3, f4, f5, kind, op, flags, thread_col = self._appends
        f0(pc)
        f1(src1_value)
        f2(src2_value)
        f3(dest_value)
        f4(frame_base)
        f5(frame_size)
        kind(KIND_INSTRUCTION)
        op(op_index)
        flags(
            src1_kind
            | (src2_kind << SRC2_SHIFT)
            | (dest_kind << DEST_SHIFT)
            | (DEPENDS_BIT if depends else 0)
        )
        thread_col(thread)

    def add_high_level(
        self,
        kind_index: int,
        address: int,
        size: int,
        register: int,
        thread: int,
        startup: bool,
    ) -> None:
        f0, f1, f2, f3, f4, f5, kind, op, flags, thread_col = self._appends
        f0(address)
        f1(size)
        f2(0)
        f3(0)
        f4(0)
        f5(0)
        kind(1 + kind_index)
        op(register)
        flags(STARTUP_BIT if startup else 0)
        thread_col(thread)

    def __len__(self) -> int:
        return len(self._columns["kind"])

    def build(self, name: str = "trace", seed: int = 0) -> "PackedTrace":
        return PackedTrace(self._columns, name=name, seed=seed)


class _PackedItems:
    """Lazy sequence view over a packed trace's items.

    Materialised objects are cached per index, so repeated passes (plan
    building for several monitors, user analysis loops) construct each
    ``Instruction``/``HighLevelEvent`` at most once — exactly the objects an
    object :class:`Trace` of the same content would hold.
    """

    __slots__ = ("_trace", "_cache")

    def __init__(self, trace: "PackedTrace") -> None:
        self._trace = trace
        self._cache: List[Optional[TraceItem]] = [None] * len(trace)

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self._cache)))]
        cache = self._cache
        item = cache[index]  # Negative indexing matches list semantics.
        if item is None:
            item = self._trace.materialize(
                index if index >= 0 else index + len(cache)
            )
            cache[index] = item
        return item

    def __iter__(self) -> Iterator[TraceItem]:
        cache = self._cache
        materialize = self._trace.materialize
        for index in range(len(cache)):
            item = cache[index]
            if item is None:
                item = materialize(index)
                cache[index] = item
            yield item

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _PackedItems):
            if other is self:
                return True
            other = list(other)
        if not isinstance(other, (list, tuple)):
            return NotImplemented
        return len(self) == len(other) and all(
            mine == theirs for mine, theirs in zip(self, other)
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __add__(self, other):
        return list(self) + list(other)

    def __radd__(self, other):
        return list(other) + list(self)

    def __repr__(self) -> str:
        return f"_PackedItems({len(self)} items)"


class PackedTrace(Trace):
    """A trace stored as flat columns with a lazy object view.

    Drop-in compatible with :class:`~repro.workload.trace.Trace` for
    reading: ``items``, indexing/slicing, iteration, ``instructions()``,
    ``num_instructions``, ``to_jsonl`` and ``concat`` behave identically.
    Packed traces are immutable — ``extend`` raises.
    """

    def __init__(
        self,
        columns: Columns,
        name: str = "trace",
        seed: int = 0,
        shared=None,
    ) -> None:
        # Deliberately no super().__init__: items are virtual.
        self.name = name
        self.seed = seed
        self._columns = columns
        self._f0 = columns["f0"]
        self._f1 = columns["f1"]
        self._f2 = columns["f2"]
        self._f3 = columns["f3"]
        self._f4 = columns["f4"]
        self._f5 = columns["f5"]
        self._kind = columns["kind"]
        self._op = columns["op"]
        self._flags = columns["flags"]
        self._thread = columns["thread"]
        self._length = len(self._kind)
        self._num_instructions: Optional[int] = None
        self._lists: Optional[Tuple[list, ...]] = None
        self._view: Optional[_PackedItems] = None
        # Keep the owning shared-memory segment (if any) alive for as long
        # as the column views reference its buffer.
        self._shared = shared

    # ------------------------------------------------------------ sequence

    @property
    def items(self) -> _PackedItems:
        if self._view is None:
            self._view = _PackedItems(self)
        return self._view

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[TraceItem]:
        return iter(self.items)

    def __getitem__(self, index):
        return self.items[index]

    def materialize(self, index: int) -> TraceItem:
        """Construct the object representation of item ``index``."""
        kind = self._kind[index]
        if kind != KIND_INSTRUCTION:
            flags = self._flags[index]
            return HighLevelEvent(
                kind=HL_KINDS[kind - 1],
                address=self._f0[index],
                size=self._f1[index],
                register=self._op[index],
                thread=self._thread[index],
                startup=bool(flags & STARTUP_BIT),
            )
        flags = self._flags[index]
        src1_kind = flags & 3
        src2_kind = (flags >> SRC2_SHIFT) & 3
        dest_kind = (flags >> DEST_SHIFT) & 3
        sources: Tuple[Operand, ...] = ()
        if src1_kind:
            first = Operand(
                OperandKind.REGISTER
                if src1_kind == OPERAND_REGISTER
                else OperandKind.MEMORY,
                self._f1[index],
            )
            if src2_kind:
                sources = (
                    first,
                    Operand(
                        OperandKind.REGISTER
                        if src2_kind == OPERAND_REGISTER
                        else OperandKind.MEMORY,
                        self._f2[index],
                    ),
                )
            else:
                sources = (first,)
        dest = None
        if dest_kind:
            dest = Operand(
                OperandKind.REGISTER
                if dest_kind == OPERAND_REGISTER
                else OperandKind.MEMORY,
                self._f3[index],
            )
        return Instruction(
            pc=self._f0[index],
            op_class=OP_CLASSES[self._op[index]],
            sources=sources,
            dest=dest,
            frame_base=self._f4[index],
            frame_size=self._f5[index],
            thread=self._thread[index],
            depends_on_prev=bool(flags & DEPENDS_BIT),
        )

    # ------------------------------------------------------------- queries

    @property
    def num_instructions(self) -> int:
        if self._num_instructions is None:
            self._num_instructions = bytes(self._kind).count(KIND_INSTRUCTION)
        return self._num_instructions

    def column_lists(self) -> Tuple[list, ...]:
        """Columns batch-converted to plain lists, in :data:`COLUMN_SPEC`
        order (f0..f5, kind, op, flags, thread).

        One C-speed ``tolist()`` per column, cached: hot consumers (the
        retire model, plan building) index plain lists instead of paying a
        per-access boxing cost on ``array``/``memoryview`` columns.
        """
        if self._lists is None:
            self._lists = tuple(
                column.tolist() if hasattr(column, "tolist") else list(column)
                for column in (self._columns[name] for name, _ in COLUMN_SPEC)
            )
        return self._lists

    def count_instructions(self, start: int = 0, stop: Optional[int] = None) -> int:
        """Number of instructions among items ``[start, stop)`` — a bytes
        scan, no materialisation."""
        if stop is None:
            stop = self._length
        return bytes(self._kind[start:stop]).count(KIND_INSTRUCTION)

    def instructions(self) -> Iterator[Instruction]:
        view = self.items
        kind_column = self._kind
        for index in range(self._length):
            if kind_column[index] == KIND_INSTRUCTION:
                yield view[index]

    def high_level_events(self) -> Iterator[HighLevelEvent]:
        view = self.items
        kind_column = self._kind
        for index in range(self._length):
            if kind_column[index] != KIND_INSTRUCTION:
                yield view[index]

    # ------------------------------------------------------------ mutation

    def extend(self, items) -> None:
        raise TypeError(
            "PackedTrace is immutable; use concat() or pack_trace() to build "
            "a new trace"
        )

    def concat(self, other: Trace) -> Trace:
        return Trace(
            list(self.items) + list(other.items), name=self.name, seed=self.seed
        )

    # ------------------------------------------------------ (de)serialising

    def column_bytes(self) -> Dict[str, bytes]:
        """Raw bytes of every column (copies; for payload assembly)."""
        return {
            name: (
                column.tobytes()
                if isinstance(column, array)
                else bytes(column)
            )
            for name, column in (
                (name, self._columns[name]) for name, _ in COLUMN_SPEC
            )
        }

    def to_payload(self) -> Tuple[dict, bytes]:
        """(metadata, buffer) pair: the buffer is the concatenation of all
        columns in :data:`COLUMN_SPEC` order, the metadata is everything
        needed to rebuild the trace over that buffer (``from_buffer``)."""
        meta = {
            "schema": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "seed": self.seed,
            "count": self._length,
        }
        payload = b"".join(self.column_bytes().values())
        return meta, payload

    @classmethod
    def from_buffer(cls, meta: dict, buffer, shared=None) -> "PackedTrace":
        """Rebuild a packed trace over ``buffer`` without copying.

        ``buffer`` is any buffer-protocol object laid out by
        :meth:`to_payload` (a shared-memory ``buf``, a ``bytes`` payload).
        Columns become ``memoryview`` casts into it; pass ``shared`` to tie
        the owning segment's lifetime to the trace.
        """
        if meta.get("schema") != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"packed trace schema {meta.get('schema')!r} != "
                f"{TRACE_SCHEMA_VERSION} (regenerate the trace)"
            )
        count = meta["count"]
        view = memoryview(buffer)
        columns: Columns = {}
        offset = 0
        for name, code in COLUMN_SPEC:
            width = array(code).itemsize * count
            columns[name] = view[offset : offset + width].cast(code)
            offset += width
        return cls(columns, name=meta["name"], seed=meta["seed"], shared=shared)

    def payload_size(self) -> int:
        """Size in bytes of the :meth:`to_payload` buffer."""
        return _ITEM_BYTES * self._length

    def release(self) -> None:
        """Drop the column views (and close the owning shared segment, if
        any).  The trace is unusable afterwards; only needed when a process
        wants to detach from shared memory before it exits."""
        self._view = None
        self._lists = None
        for attr in (
            "_f0", "_f1", "_f2", "_f3", "_f4", "_f5",
            "_kind", "_op", "_flags", "_thread",
        ):
            column = getattr(self, attr)
            if isinstance(column, memoryview):
                column.release()
            setattr(self, attr, None)
        self._columns = {}
        shared = self._shared
        self._shared = None
        if shared is not None:
            shared.close()

    def __reduce__(self):
        # Compact pickling: one bytes payload instead of an object graph.
        meta, payload = self.to_payload()
        return (_unpickle_packed_trace, (meta, payload))


def _unpickle_packed_trace(meta: dict, payload: bytes) -> PackedTrace:
    return PackedTrace.from_buffer(meta, payload)


def pack_trace(trace: Trace) -> PackedTrace:
    """Pack an object trace into columns (inverse of materialisation).

    ``pack_trace(t).items == t.items`` holds for any trace whose field
    values fit the column encoding (all generated and crafted traces do).
    """
    builder = PackedTraceBuilder()
    add_instruction = builder.add_instruction
    add_high_level = builder.add_high_level
    for item in trace:
        if isinstance(item, Instruction):
            sources = item.sources
            src1 = sources[0] if len(sources) >= 1 else None
            src2 = sources[1] if len(sources) >= 2 else None
            add_instruction(
                item.pc,
                OP_INDEX[item.op_class],
                _operand_kind_code(src1),
                src1.value if src1 is not None else 0,
                _operand_kind_code(src2),
                src2.value if src2 is not None else 0,
                _operand_kind_code(item.dest),
                item.dest.value if item.dest is not None else 0,
                item.thread,
                item.depends_on_prev,
                item.frame_base,
                item.frame_size,
            )
        else:
            add_high_level(
                HL_INDEX[item.kind],
                item.address,
                item.size,
                item.register,
                item.thread,
                item.startup,
            )
    return builder.build(name=trace.name, seed=trace.seed)
