"""Benchmark profile: the knobs that shape a synthetic trace.

Each knob maps to an observable the paper's evaluation depends on:

* the instruction mix and ``dep_prob`` (serialising dependences) shape the
  application IPC per core type (Figure 2);
* locality knobs shape cache miss rates and therefore IPC and burstiness
  (Figure 3);
* ``call_rate`` and frame sizes shape stack-update load (Figure 4(a));
* heap knobs shape malloc/free bursts, the dominant source of unfiltered
  events (Figure 4(b, c));
* pointer/taint densities shape filtering ratios (Table 2);
* sharing knobs shape AtomCheck's same-thread check hit rate.
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class BenchmarkProfile:
    """Statistical description of one benchmark.

    Instruction-mix weights need not sum to one; they are normalised.
    """

    name: str

    # --- instruction mix (relative weights) ---------------------------------
    load_weight: float = 0.22
    store_weight: float = 0.12
    alu1_weight: float = 0.18
    alu2_weight: float = 0.22
    move_weight: float = 0.08
    fp_weight: float = 0.04
    branch_weight: float = 0.12
    nop_weight: float = 0.02

    # --- ILP / core behaviour ------------------------------------------------
    #: Probability an instruction must wait for the previous one to complete.
    dep_prob: float = 0.25
    #: Probability of a front-end bubble (mispredict/fetch miss) at dispatch.
    bubble_prob: float = 0.02
    #: Dispatch bubbles drawn from a geometric with this mean, in cycles.
    bubble_mean: float = 6.0

    # --- data locality --------------------------------------------------------
    #: Number of distinct hot words in the primary working set.
    hot_set_words: int = 2048
    #: Probability a heap/global access falls in the hot set.
    locality: float = 0.92
    #: Probability a hot-set access stays near the previous one (page-level
    #: clustering: drives L1/MD-cache/M-TLB hit rates).
    page_locality: float = 0.92
    #: Probability a non-hot access is a streaming (sequential) access.
    stream_fraction: float = 0.5
    #: Fraction of memory accesses that go to the current stack frame.
    stack_access_fraction: float = 0.35

    # --- stack behaviour -------------------------------------------------------
    #: Calls per instruction (returns are emitted to balance depth).
    call_rate: float = 0.012
    frame_size_mean: int = 96
    frame_size_max: int = 512
    max_call_depth: int = 64

    # --- heap behaviour --------------------------------------------------------
    #: mallocs per instruction.
    malloc_rate: float = 0.0008
    alloc_size_mean: int = 128
    alloc_size_max: int = 4096
    #: Fraction of a fresh allocation initialised by an immediate store burst.
    init_burst_fraction: float = 0.75
    #: Probability per instruction of continuing a pending init burst.
    init_burst_intensity: float = 0.85
    #: Probability a malloc is eventually paired with a free.
    free_fraction: float = 0.95

    # --- pointers and taint -----------------------------------------------------
    #: Probability a store writes a pointer-valued register (if one exists).
    pointer_store_fraction: float = 0.10
    #: Probability a load is steered to a pointer-holding word (if any).
    pointer_load_bias: float = 0.10
    #: Probability an ALU op is pointer arithmetic (operand is a pointer reg).
    pointer_alu_fraction: float = 0.08
    #: Probability a fresh allocation's contents are tainted (external input).
    taint_source_fraction: float = 0.06
    #: Per-instruction probability of external input landing in an existing
    #: buffer (read()/recv() into a global array) — the steady taint source
    #: for benchmarks that hardly allocate.
    taint_source_rate: float = 0.0
    #: Probability a load is steered to tainted data (if any).
    taint_load_bias: float = 0.12
    #: Probability an ALU op reads a tainted register (if any).
    taint_alu_fraction: float = 0.10

    # --- legitimate unfiltered-event sources ------------------------------------
    #: Probability per memory access of touching a page whose shadow metadata
    #: has not been materialised yet (lazy shadow initialisation; the main
    #: benign source of AddrCheck unfiltered events).
    fresh_region_rate: float = 0.0015

    # --- parallelism (AtomCheck benchmarks) --------------------------------------
    parallel: bool = False
    num_threads: int = 1
    #: Fraction of heap/global accesses that go to shared words.
    shared_fraction: float = 0.0
    #: Number of distinct shared words.  Smaller sets mean more same-thread
    #: re-references within a time slice, i.e. a higher AtomCheck filter rate.
    shared_words: int = 256
    #: Instructions per time slice (threads are time-sliced on one core).
    thread_switch_period: int = 0
    #: Probability a shared-word access hits a word last touched by another
    #: thread (drives AtomCheck's long-handler rate).
    interleave_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.mix_total <= 0:
            raise ConfigurationError(f"{self.name}: instruction mix is empty")
        for field in (
            "dep_prob",
            "bubble_prob",
            "locality",
            "page_locality",
            "stream_fraction",
            "stack_access_fraction",
            "init_burst_fraction",
            "init_burst_intensity",
            "free_fraction",
            "pointer_store_fraction",
            "pointer_load_bias",
            "pointer_alu_fraction",
            "taint_source_fraction",
            "taint_source_rate",
            "taint_load_bias",
            "taint_alu_fraction",
            "fresh_region_rate",
            "shared_fraction",
            "interleave_prob",
        ):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{self.name}: {field}={value} out of [0, 1]")
        if self.parallel and self.num_threads < 2:
            raise ConfigurationError(f"{self.name}: parallel profiles need >= 2 threads")
        if self.parallel and self.thread_switch_period <= 0:
            raise ConfigurationError(f"{self.name}: parallel profiles need a time slice")

    # ------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """Plain-JSON representation; the inverse of :meth:`from_dict`.

        Used by :class:`~repro.api.spec.RunSpec` to carry *inline* profiles
        (fuzzer-synthesised benchmarks) inside the spec itself, so a spec
        round-trips into spawn-started workers without relying on runtime
        registration.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "BenchmarkProfile":
        return cls(**data)

    @property
    def mix_total(self) -> float:
        return (
            self.load_weight
            + self.store_weight
            + self.alu1_weight
            + self.alu2_weight
            + self.move_weight
            + self.fp_weight
            + self.branch_weight
            + self.nop_weight
        )

    @property
    def memory_fraction(self) -> float:
        """Fraction of instructions that access memory."""
        return (self.load_weight + self.store_weight) / self.mix_total
