"""Per-benchmark profiles calibrated against the paper's reported statistics.

The paper's per-benchmark observables used for calibration:

* Figure 2(b): AddrCheck monitored IPC — per-benchmark, average 0.24.
* Figure 2(c): MemLeak monitored IPC — average 0.68, bzip 1.2, mcf ~0.2.
* Figure 3(b): event-queue occupancy — mcf bursts fit in 128 entries,
  omnetpp needs 8K, bzip's rate exceeds 1 event/cycle.
* Figure 9(b): MemLeak slowdowns — astar and gcc have low (~70%) filtering
  ratios and frequent call/return drains.
* Section 6: SPEC2006 integer benchmarks, 32-bit, reference inputs;
  TaintCheck uses only astar, bzip, mcf, omnetpp; AtomCheck uses water,
  ocean (SPLASH), blackscholes, streamcluster, fluidanimate (PARSEC) with
  four time-sliced threads.

The absolute numbers below are synthetic; what matters is that each
benchmark lands in the same qualitative regime as its namesake.
"""

from __future__ import annotations

from typing import List

from repro.common.registry import Registry
from repro.workload.profile import BenchmarkProfile

#: SPEC CPU2006 integer benchmarks used for AddrCheck/MemCheck/MemLeak.
SPEC_BENCHMARKS: List[str] = [
    "astar",
    "bzip",
    "gcc",
    "gobmk",
    "hmmer",
    "libquantum",
    "mcf",
    "omnetpp",
]

#: Subset with taint propagation, used for TaintCheck (Section 6).
TAINT_BENCHMARKS: List[str] = ["astar", "bzip", "mcf", "omnetpp"]

#: Multithreaded benchmarks used for AtomCheck (Section 6).
PARALLEL_BENCHMARKS: List[str] = [
    "water",
    "ocean",
    "blackscholes",
    "streamcluster",
    "fluidanimate",
]

#: Registry: benchmark name -> profile.  Extensions add entries through
#: :func:`register_profile` (re-exported as ``repro.api.register_profile``).
PROFILE_REGISTRY: Registry[BenchmarkProfile] = Registry("benchmark")


def register_profile(
    profile: BenchmarkProfile, *, replace: bool = False
) -> BenchmarkProfile:
    """Make a new benchmark profile resolvable by name everywhere.

    The profile registers under its own ``name``; duplicates raise unless
    ``replace=True``.
    """
    return PROFILE_REGISTRY.register(profile.name, profile, replace=replace)


_register = register_profile


# --- SPEC-like sequential profiles ------------------------------------------------

# astar: path-finding over pointer-linked graph nodes.  Pointer-dense (low
# MemLeak filtering, ~70%), call-heavy, moderate IPC (~1.3 on 4-way OoO).
_register(
    BenchmarkProfile(
        name="astar",
        load_weight=0.22,
        store_weight=0.09,
        alu1_weight=0.10,
        alu2_weight=0.13,
        move_weight=0.06,
        fp_weight=0.02,
        branch_weight=0.20,
        nop_weight=0.18,
        dep_prob=0.513,
        bubble_prob=0.025,
        hot_set_words=4096,
        locality=0.90,
        call_rate=0.020,
        frame_size_mean=96,
        malloc_rate=0.0012,
        alloc_size_mean=96,
        pointer_store_fraction=0.30,
        pointer_load_bias=0.26,
        pointer_alu_fraction=0.22,
        taint_source_fraction=0.08,
        taint_load_bias=0.14,
        taint_alu_fraction=0.12,
        taint_source_rate=0.0005,
    ),
)

# bzip: compression — ALU-dense inner loops, very high IPC (~1.9), low call
# rate, monitored IPC for MemLeak above 1 event/cycle (queueing cannot help).
_register(
    BenchmarkProfile(
        name="bzip",
        load_weight=0.23,
        store_weight=0.11,
        alu1_weight=0.12,
        alu2_weight=0.14,
        move_weight=0.04,
        fp_weight=0.00,
        branch_weight=0.12,
        nop_weight=0.24,
        dep_prob=0.531,
        bubble_prob=0.005,
        hot_set_words=1024,
        locality=0.97,
        call_rate=0.002,
        frame_size_mean=64,
        malloc_rate=0.0002,
        alloc_size_mean=512,
        pointer_store_fraction=0.04,
        pointer_load_bias=0.04,
        pointer_alu_fraction=0.03,
        taint_source_fraction=0.10,
        taint_load_bias=0.08,
        taint_alu_fraction=0.06,
        taint_source_rate=0.00015,
    ),
)

# gcc: compiler — pointer-chasing over IR, very call-heavy (frequent
# unfiltered-queue drains at call/return boundaries), low filtering (~70%).
_register(
    BenchmarkProfile(
        name="gcc",
        load_weight=0.24,
        store_weight=0.11,
        alu1_weight=0.10,
        alu2_weight=0.11,
        move_weight=0.06,
        fp_weight=0.01,
        branch_weight=0.20,
        nop_weight=0.17,
        dep_prob=0.318,
        bubble_prob=0.035,
        hot_set_words=8192,
        locality=0.88,
        call_rate=0.028,
        frame_size_mean=128,
        malloc_rate=0.0018,
        alloc_size_mean=160,
        init_burst_fraction=0.85,
        pointer_store_fraction=0.30,
        pointer_load_bias=0.24,
        pointer_alu_fraction=0.20,
    )
)

# gobmk: game tree search — branchy, bursty event production (the benchmark
# where a 32-entry queue costs 1.17x over infinite in Figure 3(c)).
_register(
    BenchmarkProfile(
        name="gobmk",
        load_weight=0.21,
        store_weight=0.10,
        alu1_weight=0.10,
        alu2_weight=0.12,
        move_weight=0.06,
        fp_weight=0.01,
        branch_weight=0.22,
        nop_weight=0.18,
        dep_prob=0.612,
        bubble_prob=0.045,
        bubble_mean=10.0,
        hot_set_words=4096,
        locality=0.93,
        call_rate=0.022,
        frame_size_mean=112,
        malloc_rate=0.0006,
        alloc_size_mean=128,
        pointer_store_fraction=0.06,
        pointer_load_bias=0.05,
        pointer_alu_fraction=0.04,
    )
)

# hmmer: profile HMM search — highly regular, high-ILP integer code with
# excellent locality; the highest IPC of the suite (~2.0).
_register(
    BenchmarkProfile(
        name="hmmer",
        load_weight=0.24,
        store_weight=0.10,
        alu1_weight=0.10,
        alu2_weight=0.12,
        move_weight=0.03,
        fp_weight=0.02,
        branch_weight=0.12,
        nop_weight=0.27,
        dep_prob=0.5,
        bubble_prob=0.004,
        hot_set_words=1024,
        locality=0.985,
        call_rate=0.003,
        frame_size_mean=64,
        malloc_rate=0.0001,
        alloc_size_mean=1024,
        pointer_store_fraction=0.06,
        pointer_load_bias=0.06,
        pointer_alu_fraction=0.05,
    )
)

# libquantum: quantum simulation — streaming over a large array, few calls.
_register(
    BenchmarkProfile(
        name="libquantum",
        load_weight=0.24,
        store_weight=0.12,
        alu1_weight=0.08,
        alu2_weight=0.12,
        move_weight=0.03,
        fp_weight=0.02,
        branch_weight=0.14,
        nop_weight=0.25,
        dep_prob=0.535,
        bubble_prob=0.006,
        hot_set_words=512,
        locality=0.80,
        stream_fraction=0.9,
        call_rate=0.002,
        frame_size_mean=48,
        malloc_rate=0.0001,
        alloc_size_mean=2048,
        pointer_store_fraction=0.05,
        pointer_load_bias=0.05,
        pointer_alu_fraction=0.04,
    )
)

# mcf: memory-bound pointer chasing over a huge working set — the lowest
# IPC of the suite (~0.45) and the lowest monitored IPC (bursts fit in a
# 128-entry queue; a 32-entry queue costs nothing, Figure 3(c)).
_register(
    BenchmarkProfile(
        name="mcf",
        load_weight=0.27,
        store_weight=0.08,
        alu1_weight=0.08,
        alu2_weight=0.12,
        move_weight=0.05,
        fp_weight=0.00,
        branch_weight=0.18,
        nop_weight=0.22,
        dep_prob=0.527,
        bubble_prob=0.02,
        hot_set_words=131072,
        locality=0.55,
        stream_fraction=0.2,
        call_rate=0.004,
        frame_size_mean=64,
        malloc_rate=0.0003,
        alloc_size_mean=192,
        pointer_store_fraction=0.1,
        pointer_load_bias=0.09,
        pointer_alu_fraction=0.08,
        taint_source_fraction=0.05,
        taint_load_bias=0.10,
        taint_alu_fraction=0.08,
        taint_source_rate=0.0004,
    ),
)

# omnetpp: discrete-event simulation — allocation-heavy, pointer-dense,
# sustained high monitored IPC (8K-entry occupancy tail in Figure 3(b)).
_register(
    BenchmarkProfile(
        name="omnetpp",
        load_weight=0.26,
        store_weight=0.13,
        alu1_weight=0.12,
        alu2_weight=0.15,
        move_weight=0.08,
        fp_weight=0.01,
        branch_weight=0.12,
        nop_weight=0.13,
        dep_prob=0.334,
        bubble_prob=0.02,
        hot_set_words=16384,
        locality=0.85,
        call_rate=0.016,
        frame_size_mean=80,
        malloc_rate=0.0030,
        alloc_size_mean=96,
        init_burst_fraction=0.9,
        pointer_store_fraction=0.12,
        pointer_load_bias=0.1,
        pointer_alu_fraction=0.08,
        taint_source_fraction=0.07,
        taint_load_bias=0.12,
        taint_alu_fraction=0.10,
        taint_source_rate=0.0008,
    ),
)

# --- parallel profiles (AtomCheck) ---------------------------------------------

def _parallel(name: str, **overrides) -> BenchmarkProfile:
    base = dict(
        parallel=True,
        num_threads=4,
        thread_switch_period=2400,
        shared_fraction=0.30,
        shared_words=24,
        locality=0.95,
        stream_fraction=0.15,
        load_weight=0.24,
        store_weight=0.12,
        alu1_weight=0.18,
        alu2_weight=0.22,
        move_weight=0.06,
        fp_weight=0.06,
        branch_weight=0.10,
        nop_weight=0.02,
        dep_prob=0.18,
        hot_set_words=512,
        call_rate=0.010,
        malloc_rate=0.0004,
        pointer_store_fraction=0.04,
        pointer_load_bias=0.02,
        pointer_alu_fraction=0.03,
    )
    base.update(overrides)
    return _register(BenchmarkProfile(name=name, **base))


# water: n-body molecular dynamics — FP-heavy, modest sharing.
_parallel("water", fp_weight=0.16, alu2_weight=0.16, shared_fraction=0.10,
          shared_words=16, dep_prob=0.457)

# ocean: grid solver — streaming FP over large grids, boundary sharing.
_parallel("ocean", fp_weight=0.14, locality=0.85, stream_fraction=0.45,
          hot_set_words=1024, shared_fraction=0.15, shared_words=32,
          dep_prob=0.618)

# blackscholes: embarrassingly parallel option pricing — tiny sharing.
_parallel("blackscholes", fp_weight=0.20, alu2_weight=0.14,
          shared_fraction=0.04, shared_words=8, dep_prob=0.392,
          call_rate=0.004)

# streamcluster: online clustering — heavy sharing of cluster centres.
_parallel("streamcluster", shared_fraction=0.22, shared_words=48,
          locality=0.93, dep_prob=0.631)

# fluidanimate: particle simulation — neighbour-list sharing, lock-dense.
_parallel("fluidanimate", fp_weight=0.12, shared_fraction=0.16,
          shared_words=40, dep_prob=0.533, call_rate=0.014)


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a registered benchmark profile by name."""
    return PROFILE_REGISTRY.get(name)


def benchmark_names() -> List[str]:
    """All registered benchmark names (SPEC first, then parallel, then any
    registered extras in sorted order)."""
    builtin = SPEC_BENCHMARKS + PARALLEL_BENCHMARKS
    extras = [name for name in PROFILE_REGISTRY.names() if name not in builtin]
    return builtin + extras
