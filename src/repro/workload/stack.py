"""Call-stack model for the trace generator.

Tracks frame geometry so that call/return instructions carry the frame base
and size the Stack-Update Unit needs (Section 4.2), and so stack accesses go
to live frames (which the SUU has marked allocated — the filterable case).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.common.rng import DeterministicRng
from repro.common.units import WORD_SIZE, align_up

#: The stack grows down from this virtual address.
STACK_TOP = 0x7FFF_0000


@dataclasses.dataclass(frozen=True)
class Frame:
    """One live stack frame (base is the numerically lowest address)."""

    base: int
    size: int

    @property
    def num_words(self) -> int:
        return self.size // WORD_SIZE

    def word_at(self, index: int) -> int:
        return self.base + (index % max(1, self.num_words)) * WORD_SIZE


class CallStackModel:
    """Grow-down stack of frames with bounded depth."""

    def __init__(self, rng: DeterministicRng, max_depth: int = 64) -> None:
        self._rng = rng
        self.max_depth = max_depth
        self.frames: List[Frame] = []
        self._stack_pointer = STACK_TOP

    @property
    def depth(self) -> int:
        return len(self.frames)

    @property
    def can_call(self) -> bool:
        return self.depth < self.max_depth

    @property
    def can_return(self) -> bool:
        return self.depth > 0

    def call(self, frame_size: int) -> Frame:
        """Push a frame of ``frame_size`` bytes and return it."""
        size = max(WORD_SIZE, align_up(frame_size, WORD_SIZE))
        self._stack_pointer -= size
        frame = Frame(base=self._stack_pointer, size=size)
        self.frames.append(frame)
        return frame

    def ret(self) -> Frame:
        """Pop the innermost frame and return it (raises IndexError if empty)."""
        frame = self.frames.pop()
        self._stack_pointer += frame.size
        return frame

    def current_frame(self) -> Optional[Frame]:
        if not self.frames:
            return None
        return self.frames[-1]

    def random_live_word(self) -> Optional[int]:
        """Address of a random word in the innermost few frames."""
        if not self.frames:
            return None
        # Accesses concentrate in the innermost frames, like real programs.
        window = self.frames[-min(3, len(self.frames)):]
        frame = self._rng.choice(window)
        return frame.word_at(self._rng.randint(0, max(0, frame.num_words - 1)))
