"""Trace containers: dynamic instruction streams plus high-level events.

A trace is an ordered list of :class:`TraceItem`: retired instructions
interleaved with high-level events (malloc, free, taint-source, thread
switches).  High-level events bypass FADE and are handled directly by monitor
software (Section 3.3: "The filtering accelerator does not target high-level
events, as they are infrequent and require complex handling").
"""

from __future__ import annotations

import dataclasses
import enum
import json
from typing import Iterable, Iterator, List, Optional, Union

from repro.isa.instruction import Instruction, Operand, OperandKind
from repro.isa.opcodes import OpClass


class HighLevelKind(enum.Enum):
    """High-level application events the monitors process in software."""

    MALLOC = "malloc"
    FREE = "free"
    #: External input arriving into a buffer (taint source for TaintCheck).
    TAINT_SOURCE = "taint_source"
    #: Time-slice switch on a shared core (reprograms AtomCheck's thread tag).
    THREAD_SWITCH = "thread_switch"
    #: End of program: monitors run their final analysis (leak reports).
    PROGRAM_EXIT = "program_exit"


@dataclasses.dataclass(frozen=True, slots=True)
class HighLevelEvent:
    """A non-instruction event delivered straight to the monitor.

    Attributes:
        kind: which high-level action occurred.
        address: start of the affected region (MALLOC/FREE/TAINT_SOURCE).
        size: size in bytes of the affected region.
        register: destination register receiving a fresh pointer (MALLOC).
        thread: the thread after a THREAD_SWITCH, else the acting thread.
        startup: program-launch setup (static segments); monitors apply the
            functional effect but charge no handler time, since in a real
            run this one-off cost amortises over billions of instructions.
    """

    kind: HighLevelKind
    address: int = 0
    size: int = 0
    register: int = 0
    thread: int = 0
    startup: bool = False


TraceItem = Union[Instruction, HighLevelEvent]


class Trace:
    """An ordered stream of trace items with provenance metadata."""

    def __init__(
        self,
        items: Iterable[TraceItem],
        name: str = "trace",
        seed: int = 0,
    ) -> None:
        self.items: List[TraceItem] = list(items)
        self.name = name
        self.seed = seed

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[TraceItem]:
        return iter(self.items)

    def __getitem__(self, index):
        return self.items[index]

    def instructions(self) -> Iterator[Instruction]:
        for item in self.items:
            if isinstance(item, Instruction):
                yield item

    def high_level_events(self) -> Iterator[HighLevelEvent]:
        for item in self.items:
            if isinstance(item, HighLevelEvent):
                yield item

    @property
    def num_instructions(self) -> int:
        return sum(1 for _ in self.instructions())

    def count_instructions(self, start: int = 0, stop: Optional[int] = None) -> int:
        """Number of instructions among items ``[start, stop)``.

        :class:`~repro.workload.packed.PackedTrace` overrides this with a
        column scan; the object representation counts the slice."""
        if stop is None:
            stop = len(self.items)
        return sum(
            1
            for index in range(start, stop)
            if isinstance(self.items[index], Instruction)
        )

    def extend(self, items: Iterable[TraceItem]) -> None:
        self.items.extend(items)

    def concat(self, other: "Trace") -> "Trace":
        return Trace(self.items + other.items, name=self.name, seed=self.seed)

    # -- serialisation ------------------------------------------------------

    def to_jsonl(self) -> str:
        """Serialise to one JSON object per line (for trace archiving)."""
        lines = [json.dumps({"name": self.name, "seed": self.seed})]
        for item in self.items:
            lines.append(json.dumps(_item_to_dict(item)))
        return "\n".join(lines)

    @staticmethod
    def from_jsonl(text: str) -> "Trace":
        lines = text.strip().splitlines()
        header = json.loads(lines[0])
        items = [_item_from_dict(json.loads(line)) for line in lines[1:]]
        return Trace(items, name=header["name"], seed=header["seed"])


def _item_to_dict(item: TraceItem) -> dict:
    if isinstance(item, HighLevelEvent):
        return {
            "t": "hl",
            "kind": item.kind.value,
            "address": item.address,
            "size": item.size,
            "register": item.register,
            "thread": item.thread,
            "startup": item.startup,
        }
    return {
        "t": "insn",
        "pc": item.pc,
        "op": item.op_class.value,
        "srcs": [[operand.kind.value, operand.value] for operand in item.sources],
        "dest": [item.dest.kind.value, item.dest.value] if item.dest else None,
        "fb": item.frame_base,
        "fs": item.frame_size,
        "thread": item.thread,
        "dep": item.depends_on_prev,
    }


def _item_from_dict(payload: dict) -> TraceItem:
    if payload["t"] == "hl":
        return HighLevelEvent(
            kind=HighLevelKind(payload["kind"]),
            address=payload["address"],
            size=payload["size"],
            register=payload["register"],
            thread=payload["thread"],
            startup=payload.get("startup", False),
        )
    sources = tuple(
        Operand(OperandKind(kind), value) for kind, value in payload["srcs"]
    )
    dest = None
    if payload["dest"] is not None:
        dest = Operand(OperandKind(payload["dest"][0]), payload["dest"][1])
    return Instruction(
        pc=payload["pc"],
        op_class=OpClass(payload["op"]),
        sources=sources,
        dest=dest,
        frame_base=payload["fb"],
        frame_size=payload["fs"],
        thread=payload["thread"],
        depends_on_prev=payload["dep"],
    )
