"""Tests for the analysis layer: statistics, formatting, and (scaled-down)
experiment harnesses."""

import pytest

from repro.analysis import (
    ExperimentSettings,
    benchmarks_for,
    fig2_monitored_ipc,
    fig3_queue_occupancy,
    fig3_queue_size_slowdown,
    format_table,
    geometric_mean,
    table2_filtering,
    weighted_cdf,
)
from repro.analysis.stats import occupancy_time_distribution, percentile_from_cdf

TINY = ExperimentSettings(num_instructions=2500, seed=7)


class TestStats:
    def test_geometric_mean_basics(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([5.0]) == pytest.approx(5.0)
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_ignores_nonpositive(self):
        assert geometric_mean([4.0, 0.0, -1.0]) == pytest.approx(4.0)

    def test_weighted_cdf(self):
        cdf = weighted_cdf({0: 1.0, 2: 3.0})
        assert cdf == [(0, pytest.approx(25.0)), (2, pytest.approx(100.0))]

    def test_percentile_from_cdf(self):
        cdf = [(0, 25.0), (1, 50.0), (4, 100.0)]
        assert percentile_from_cdf(cdf, 50.0) == 1
        assert percentile_from_cdf(cdf, 99.0) == 4

    def test_occupancy_time_distribution(self):
        # One entry resident from t=0 to t=2, two from t=2 to t=3.
        distribution = occupancy_time_distribution(
            arrivals=[0.0, 2.0], departures=[3.0, 4.0]
        )
        assert distribution[1] == pytest.approx(3.0)  # [0,2) and [3,4).
        assert distribution[2] == pytest.approx(1.0)


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 10.25]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.50" in text and "10.25" in text
        assert len(lines) == 5  # Title, header, rule, two rows.

    def test_benchmarks_for(self):
        assert benchmarks_for("atomcheck")[0] == "water"
        assert benchmarks_for("taintcheck") == ["astar", "bzip", "mcf", "omnetpp"]
        assert len(benchmarks_for("memleak")) == 8


class TestExperimentHarnesses:
    def test_fig2_structure(self):
        data = fig2_monitored_ipc(TINY)
        assert set(data["per_monitor"]) == {
            "addrcheck", "atomcheck", "memcheck", "memleak", "taintcheck"
        }
        for row in data["per_monitor"].values():
            assert 0 < row["monitored_ipc"] < row["app_ipc"]
        assert set(data["per_benchmark"]) == {"addrcheck", "memleak"}

    def test_fig2_memory_trackers_have_lower_load(self):
        """Section 3.1: memory-tracking monitors see fewer events than
        propagation trackers."""
        data = fig2_monitored_ipc(TINY)["per_monitor"]
        assert data["addrcheck"]["monitored_ipc"] < data["memleak"]["monitored_ipc"]

    def test_fig3_occupancy_is_ordered(self):
        occupancy = fig3_queue_occupancy("memleak", TINY, benchmarks=["mcf", "omnetpp"])
        for row in occupancy.values():
            assert row["p50"] <= row["p90"] <= row["p99"] <= row["max"]

    def test_fig3_queue_size_larger_is_no_worse(self):
        slowdowns = fig3_queue_size_slowdown("memleak", TINY, capacities=(8, 4096))
        for per_capacity in slowdowns.values():
            assert per_capacity[4096] <= per_capacity[8] + 1e-9
            assert per_capacity[8] >= 1.0 - 1e-9

    def test_table2_ranges(self):
        filtering = table2_filtering(TINY)
        assert set(filtering) == set(
            ["addrcheck", "atomcheck", "memcheck", "memleak", "taintcheck"]
        )
        assert filtering["addrcheck"] > 95.0
        for value in filtering.values():
            assert 0.0 <= value <= 100.0


class TestAreaPower:
    def test_totals_match_paper_section_7_6(self):
        from repro.analysis import area_power

        report = area_power()
        # Paper: FADE 0.09 mm2 / 122 mW; MD cache 0.03 mm2 / 151 mW @ 0.3ns.
        assert report["fade_logic"]["area_mm2"] == pytest.approx(0.09, abs=0.01)
        assert report["fade_logic"]["peak_power_mw"] == pytest.approx(122, abs=15)
        assert report["md_cache"]["area_mm2"] == pytest.approx(0.03, abs=0.005)
        assert report["md_cache"]["peak_power_mw"] == pytest.approx(151, abs=20)
        assert report["md_cache"]["access_latency_ns"] == pytest.approx(0.3, abs=0.05)

    def test_component_budgets_are_positive(self):
        from repro.power import fade_component_inventory

        for component in fade_component_inventory():
            assert component.area_um2 > 0
            assert component.power_mw > 0

    def test_event_table_dominates_storage(self):
        """128 x 96-bit entries are by far the largest flop array."""
        from repro.power import fade_component_inventory

        inventory = {c.name: c for c in fade_component_inventory()}
        table = inventory["event table"]
        assert all(
            table.bits >= c.bits for c in inventory.values()
        )

    def test_cacti_lite_scales_with_size(self):
        from repro.power import estimate_sram_cache

        small = estimate_sram_cache(4 * 1024, 2, 64)
        large = estimate_sram_cache(64 * 1024, 4, 64)
        assert large.area_mm2 > small.area_mm2
        assert large.access_latency_ns > small.access_latency_ns
