"""Tests for the repro.api execution layer: RunSpec, registries, runners,
caches and ResultSets."""

import dataclasses
import json

import pytest

from repro import quick_run
from repro.api import (
    ExperimentSettings,
    LruCache,
    ParallelRunner,
    ResultSet,
    RunSpec,
    RunnerCache,
    SerialRunner,
    register_monitor,
    register_profile,
    spec_grid,
)
from repro.common.errors import ConfigurationError
from repro.cores.base import CoreType
from repro.monitors import MONITOR_REGISTRY, create_monitor, monitor_names
from repro.monitors.memleak import MemLeak
from repro.system.config import SystemConfig
from repro.workload.profiles import PROFILE_REGISTRY, get_profile

TINY = ExperimentSettings(num_instructions=1500, seed=11)


class TestRunSpec:
    def test_equality_and_hash(self):
        a = RunSpec("astar", "memleak", SystemConfig(), TINY)
        b = RunSpec("astar", "memleak", SystemConfig(), TINY)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_inequality_on_any_axis(self):
        base = RunSpec("astar", "memleak", SystemConfig(), TINY)
        assert base != base.replace(benchmark="mcf")
        assert base != base.replace(monitor="addrcheck")
        assert base != base.replace(config=SystemConfig(fade_enabled=False))
        assert base != base.replace(settings=TINY.scaled(2.0))

    def test_json_round_trip(self):
        spec = RunSpec(
            "omnetpp",
            "taintcheck",
            SystemConfig(
                core_type=CoreType.OOO2,
                fade_enabled=True,
                non_blocking=False,
                event_queue_capacity=None,
                fsq_capacity=8,
            ),
            ExperimentSettings(num_instructions=5000, seed=3, warmup_fraction=0.25),
        )
        text = spec.to_json()
        restored = RunSpec.from_json(text)
        assert restored == spec
        assert hash(restored) == hash(spec)
        # The wire format is plain JSON (enums by value, nested dicts).
        assert json.loads(text)["config"]["core_type"] == "2-way OoO"

    def test_dict_round_trip_default_config(self):
        spec = RunSpec("astar", "memleak")
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_spec_grid_shape_and_order(self):
        grid = spec_grid(
            ["astar", "mcf"],
            ["memleak", "addrcheck"],
            [SystemConfig(), SystemConfig(fade_enabled=False)],
            TINY,
        )
        assert len(grid) == 8
        # Monitor-major, then benchmark, then config.
        assert grid[0].monitor == "memleak" and grid[0].benchmark == "astar"
        assert grid[1].config.fade_enabled is False
        assert grid[4].monitor == "addrcheck"
        assert len(set(grid)) == 8  # All distinct, hashable.


class TestSystemConfigDefaults:
    def test_nested_defaults_are_not_shared(self):
        first = SystemConfig()
        second = SystemConfig()
        assert first.md_cache == second.md_cache
        assert first.md_cache is not second.md_cache
        assert first.hierarchy is not second.hierarchy

    def test_dict_round_trip(self):
        config = SystemConfig(core_type=CoreType.INORDER, fade_enabled=False)
        assert SystemConfig.from_dict(config.to_dict()) == config


class TestRegistries:
    def test_register_monitor_runnable_by_name(self):
        class TinyLeak(MemLeak):
            pass

        register_monitor("tinyleak", TinyLeak)
        try:
            assert "tinyleak" in monitor_names()
            assert isinstance(create_monitor("TinyLeak"), TinyLeak)
            result = quick_run(
                benchmark="astar", monitor="tinyleak", num_instructions=1500
            )
            assert result.monitored_events > 0
        finally:
            MONITOR_REGISTRY.unregister("tinyleak")

    def test_duplicate_monitor_rejected(self):
        with pytest.raises(ConfigurationError):
            register_monitor("memleak", MemLeak)
        register_monitor("memleak", MemLeak, replace=True)  # Explicit override.

    def test_unknown_monitor_message_lists_known(self):
        with pytest.raises(ConfigurationError, match="unknown monitor"):
            create_monitor("nonesuch")

    def test_register_profile_and_duplicate_rejection(self):
        base = get_profile("astar")
        custom = dataclasses.replace(base, name="astar_custom")
        register_profile(custom)
        try:
            assert get_profile("astar_custom") is custom
            with pytest.raises(ConfigurationError):
                register_profile(custom)
            result = quick_run(
                benchmark="astar_custom", monitor="memleak", num_instructions=1500
            )
            assert result.instructions > 0
        finally:
            PROFILE_REGISTRY.unregister("astar_custom")


class TestLruCache:
    def test_bounded_eviction_is_lru(self):
        cache = LruCache(max_entries=2)
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("b", lambda: 2)
        cache.get_or_create("a", lambda: -1)  # Hit: refreshes "a".
        cache.get_or_create("c", lambda: 3)  # Evicts "b" (least recent).
        assert "a" in cache and "c" in cache and "b" not in cache
        assert len(cache) == 2
        assert cache.hits == 1 and cache.misses == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LruCache(0)

    def test_runner_cache_reuses_traces(self):
        cache = RunnerCache()
        first = cache.trace("astar", TINY)
        second = cache.trace("astar", TINY)
        assert first is second
        assert cache.stats()["trace_hits"] == 1

    def test_monitor_replacement_invalidates_cached_plans(self):
        class QuietLeak(MemLeak):
            monitored_op_classes = frozenset()  # Wants nothing.

        cache = RunnerCache()
        register_monitor("mutantleak", MemLeak)
        try:
            before = cache.plan("astar", TINY, "mutantleak")
            register_monitor("mutantleak", QuietLeak, replace=True)
            after = cache.plan("astar", TINY, "mutantleak")
            assert after is not before  # Keyed by factory, not name.
            assert after.monitored == 0
            assert before.monitored > 0
        finally:
            MONITOR_REGISTRY.unregister("mutantleak")

    def test_profile_replacement_invalidates_cached_traces(self):
        base = get_profile("astar")
        cache = RunnerCache()
        register_profile(dataclasses.replace(base, name="mutant"))
        try:
            before = cache.trace("mutant", TINY)
            register_profile(
                dataclasses.replace(base, name="mutant", locality=0.5),
                replace=True,
            )
            after = cache.trace("mutant", TINY)
            assert after is not before  # Keyed by profile value, not name.
        finally:
            PROFILE_REGISTRY.unregister("mutant")


class TestRunners:
    GRID = spec_grid(
        ["astar", "mcf"],
        ["memleak"],
        [SystemConfig(), SystemConfig(fade_enabled=False)],
        TINY,
    )

    def test_serial_runner_preserves_spec_order(self):
        results = SerialRunner().run(self.GRID)
        assert results.specs == self.GRID

    def test_serial_and_parallel_are_deterministic(self):
        serial = SerialRunner().run(self.GRID)
        parallel = ParallelRunner(jobs=2).run(self.GRID)
        assert serial == parallel  # Same specs, bit-identical RunResults.

    def test_parallel_falls_back_serially_for_single_spec(self):
        runner = ParallelRunner(jobs=4)
        results = runner.run(self.GRID[:1])
        assert len(results) == 1
        assert results[0].result == SerialRunner().run(self.GRID[:1])[0].result

    def test_run_one_matches_run(self):
        spec = self.GRID[0]
        runner = SerialRunner()
        assert runner.run_one(spec) == runner.run([spec]).results[0]


class TestResultSet:
    @pytest.fixture(scope="class")
    def results(self):
        return SerialRunner().run(TestRunners.GRID)

    def test_filter_by_spec_and_config_fields(self, results):
        astar = results.filter(benchmark="astar")
        assert len(astar) == 2
        fade = results.filter(benchmark="astar", fade_enabled=True)
        assert len(fade) == 1
        assert fade.results[0].fade_stats is not None

    def test_group_by_and_geomean(self, results):
        groups = results.group_by("benchmark")
        assert list(groups) == ["astar", "mcf"]
        for group in groups.values():
            assert len(group) == 2
        fade_gmean = results.filter(fade_enabled=True).geomean("slowdown")
        base_gmean = results.filter(fade_enabled=False).geomean("slowdown")
        assert 0 < fade_gmean < base_gmean  # FADE accelerates monitoring.

    def test_unknown_group_key_raises(self, results):
        with pytest.raises(AttributeError):
            results.group_by("nonesuch")

    def test_find_by_spec_value(self, results):
        spec = TestRunners.GRID[0]
        copy = RunSpec.from_dict(spec.to_dict())
        assert results.find(copy) == results.results[0]
        assert results.find(spec.replace(benchmark="bzip")) is None

    def test_json_save_load_round_trip(self, results, tmp_path):
        path = results.save(tmp_path / "results.json")
        reloaded = ResultSet.load(path)
        assert reloaded == results
        # Aggregations survive the round trip exactly.
        assert reloaded.geomean("slowdown") == results.geomean("slowdown")

    def test_unsupported_schema_version_rejected(self, results):
        data = results.to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            ResultSet.from_dict(data)

    def test_mean_and_values(self, results):
        values = results.values("slowdown")
        assert len(values) == len(results)
        assert results.mean("slowdown") == pytest.approx(sum(values) / len(values))
        assert ResultSet().mean() == 0.0 and ResultSet().geomean() == 0.0


class TestGracefulInterrupt:
    """Ctrl-C during a parallel grid: completed chunks are persisted to the
    store before the interrupt propagates, so a re-run serves them warm and
    only recomputes the killed cells."""

    GRID = spec_grid(
        ["astar", "mcf"],
        ["memleak", "addrcheck"],
        [SystemConfig(), SystemConfig(fade_enabled=False)],
        TINY,
    )

    class _FakeFuture:
        def __init__(self, batch=None, error=None):
            self._batch = batch
            self._error = error

        def done(self):
            return self._batch is not None

        def cancelled(self):
            return False

        def result(self):
            if self._error is not None:
                raise self._error
            return self._batch

    class _InterruptingPool:
        """First chunk computes for real (in-process); every later chunk's
        ``result()`` raises KeyboardInterrupt — a Ctrl-C that lands after
        some workers already finished."""

        def __init__(self, *args, **kwargs):
            self.submitted = 0
            from repro.api import runner as runner_module

            runner_module._worker_init()

        def submit(self, fn, payload):
            self.submitted += 1
            if self.submitted == 1:
                return TestGracefulInterrupt._FakeFuture(batch=fn(payload))
            return TestGracefulInterrupt._FakeFuture(error=KeyboardInterrupt())

        def shutdown(self, *args, **kwargs):
            pass

    def test_partial_results_stored_on_interrupt(self, tmp_path, monkeypatch):
        from repro.api import ResultStore
        from repro.api import runner as runner_module

        monkeypatch.setattr(
            runner_module, "ProcessPoolExecutor", self._InterruptingPool
        )
        # The fake pool runs chunks in-process, seeding the module-global
        # worker cache with this grid's shared-memory traces; restore it so
        # the stale attachments never leak into later tests.
        monkeypatch.setattr(runner_module, "_WORKER_CACHE", None)
        store = ResultStore(tmp_path / "partial")
        runner = ParallelRunner(jobs=2, store=store)
        with pytest.raises(KeyboardInterrupt):
            runner.run(self.GRID)
        partial = len(store)
        assert 0 < partial < len(self.GRID)  # First chunk only.

        # The re-run (here: a plain serial runner on the same store) serves
        # the persisted chunk warm and recomputes just the killed cells —
        # bit-identical to an uninterrupted run.
        resume_store = ResultStore(tmp_path / "partial")
        resumed = SerialRunner(store=resume_store).run(self.GRID)
        assert resume_store.hits == partial
        assert resume_store.misses == len(self.GRID) - partial
        assert resumed.to_dict() == SerialRunner().run(self.GRID).to_dict()

    def test_interrupt_without_store_still_propagates(self, monkeypatch):
        from repro.api import runner as runner_module

        monkeypatch.setattr(
            runner_module, "ProcessPoolExecutor", self._InterruptingPool
        )
        monkeypatch.setattr(runner_module, "_WORKER_CACHE", None)
        with pytest.raises(KeyboardInterrupt):
            ParallelRunner(jobs=2).run(self.GRID)

    def test_terminate_pool_kills_processes(self):
        from repro.api.runner import _terminate_pool

        class _Process:
            def __init__(self):
                self.terminated = False

            def terminate(self):
                self.terminated = True

        class _Pool:
            def __init__(self):
                self._processes = {1: _Process(), 2: _Process()}
                self.shutdown_args = None

            def shutdown(self, wait=True, cancel_futures=False):
                self.shutdown_args = (wait, cancel_futures)

        pool = _Pool()
        _terminate_pool(pool)
        assert pool.shutdown_args == (False, True)
        assert all(p.terminated for p in pool._processes.values())
