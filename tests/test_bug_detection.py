"""End-to-end bug detection: every crafted bug trace must be caught by its
monitor, in software and under both FADE modes."""

import pytest

from repro.monitors import create_monitor
from repro.monitors.reports import BugKind
from repro.system import SystemConfig, simulate
from repro.workload.bugs import (
    atomicity_violation_trace,
    memory_leak_trace,
    taint_exploit_trace,
    uninitialized_read_trace,
    use_after_free_trace,
)

CASES = [
    ("addrcheck", use_after_free_trace, BugKind.INVALID_READ),
    ("memcheck", uninitialized_read_trace, BugKind.UNINITIALIZED_USE),
    ("taintcheck", taint_exploit_trace, BugKind.TAINTED_JUMP),
    ("memleak", memory_leak_trace, BugKind.MEMORY_LEAK),
    ("atomcheck", atomicity_violation_trace, BugKind.ATOMICITY_VIOLATION),
]


@pytest.mark.parametrize("monitor_name,trace_factory,expected_kind", CASES)
@pytest.mark.parametrize(
    "config",
    [
        SystemConfig(fade_enabled=False),
        SystemConfig(fade_enabled=True, non_blocking=False),
        SystemConfig(fade_enabled=True, non_blocking=True),
    ],
    ids=["unaccelerated", "blocking-fade", "non-blocking-fade"],
)
def test_bug_is_detected(monitor_name, trace_factory, expected_kind, config):
    monitor = create_monitor(monitor_name)
    result = simulate(trace_factory(), monitor, config)
    kinds = {report.kind for report in result.reports}
    assert expected_kind in kinds, (
        f"{monitor_name} missed {expected_kind} on {trace_factory.__name__} "
        f"under {config.describe()}"
    )


@pytest.mark.parametrize("monitor_name,trace_factory,expected_kind", CASES)
def test_detection_is_not_lost_to_filtering(monitor_name, trace_factory, expected_kind):
    """The buggy event itself must reach software: FADE may filter the clean
    prefix, but never the event that the handler would report on."""
    monitor = create_monitor(monitor_name)
    result = simulate(trace_factory(), monitor, SystemConfig(fade_enabled=True))
    assert result.fade_stats is not None
    assert any(report.kind is expected_kind for report in result.reports)


def test_use_after_free_reports_the_faulting_address():
    monitor = create_monitor("addrcheck")
    trace = use_after_free_trace()
    result = simulate(trace, monitor, SystemConfig(fade_enabled=True))
    (report,) = [r for r in result.reports if r.kind is BugKind.INVALID_READ]
    assert report.address == 0x1100_0000


def test_atomicity_report_names_the_interleaving():
    monitor = create_monitor("atomcheck")
    result = simulate(
        atomicity_violation_trace(), monitor, SystemConfig(fade_enabled=False)
    )
    (report,) = [r for r in result.reports if r.kind is BugKind.ATOMICITY_VIOLATION]
    assert "R-W-R" in report.message


def test_leak_report_identifies_the_allocation():
    monitor = create_monitor("memleak")
    result = simulate(memory_leak_trace(), monitor, SystemConfig(fade_enabled=False))
    leak_reports = [r for r in result.reports if r.kind is BugKind.MEMORY_LEAK]
    assert any(r.address == 0x1100_3000 for r in leak_reports)
