"""Unit tests for the burst-drain support machinery: bulk filtered-run
tracking, the per-word/per-owner FSQ, the two-level filter memo, and the
fusion telemetry."""

import random

import pytest

from repro.fade.accelerator import Fade, FadeConfig
from repro.fade.fsq import FilterStoreQueue
from repro.isa.events import MonitoredEvent
from repro.isa.opcodes import OpClass, event_id_for
from repro.monitors import MONITOR_NAMES, create_monitor
from repro.system import SystemConfig
from repro.system.simulator import MonitoringSimulation, fusion_stats
from repro.workload import generate_trace, get_profile


# ------------------------------------------------- bulk _track_filtering


class _TrackerHarness:
    """A MonitoringSimulation shell exposing only the filtering tracker."""

    def __init__(self):
        sim = object.__new__(MonitoringSimulation)
        sim.config = SystemConfig()
        sim.result = type("R", (), {})()
        from collections import Counter

        sim.result.unfiltered_distances = Counter()
        sim.result.unfiltered_burst_sizes = []
        sim._filterable_gap = 0
        sim._current_burst = 0
        sim._saw_unfiltered = False
        self.sim = sim

    def finish(self):
        self.sim._finish_burst()
        return (
            dict(self.sim.result.unfiltered_distances),
            list(self.sim.result.unfiltered_burst_sizes),
        )


@pytest.mark.parametrize("seed", [3, 17, 99])
def test_bulk_track_filtering_matches_per_event(seed):
    """A fused run of K filtered events accrued in one call produces the
    exact histograms of K single-event calls, on randomized sequences."""
    rng = random.Random(seed)
    sequence = [rng.random() < 0.8 for _ in range(4000)]  # True = filtered.

    per_event = _TrackerHarness()
    for filtered in sequence:
        per_event.sim._track_filtering(filtered)

    bulk = _TrackerHarness()
    run = 0
    for filtered in sequence:
        if filtered:
            run += 1
            continue
        if run:
            bulk.sim._track_filtering(True, run)
            run = 0
        bulk.sim._track_filtering(False)
    if run:
        bulk.sim._track_filtering(True, run)

    assert per_event.finish() == bulk.finish()


# ------------------------------------------------------------------- FSQ


class _ReferenceFsq:
    """The original list-scan FSQ semantics, as an oracle."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.entries = []
        self.inserts = 0
        self.hits = 0
        self.max_occupancy = 0

    def insert(self, word, value, owner):
        assert len(self.entries) < self.capacity
        self.entries.append((word, value, owner))
        self.inserts += 1
        self.max_occupancy = max(self.max_occupancy, len(self.entries))

    def lookup(self, word):
        for entry_word, value, _ in reversed(self.entries):
            if entry_word == word:
                self.hits += 1
                return value
        return None

    def release(self, owner):
        kept = [e for e in self.entries if e[2] != owner]
        released = len(self.entries) - len(kept)
        self.entries = kept
        return released


@pytest.mark.parametrize("seed", [1, 5, 23])
def test_fsq_randomized_against_reference(seed):
    """Interleaved insert/lookup/release streams match the reference
    linear-scan implementation, statistics included."""
    rng = random.Random(seed)
    fsq = FilterStoreQueue(capacity=8)
    ref = _ReferenceFsq(capacity=8)
    words = [0x100, 0x104, 0x108, 0x10C]
    owners = list(range(6))
    for _ in range(3000):
        op = rng.random()
        if op < 0.4 and len(fsq) < 8:
            word = rng.choice(words)
            value = rng.randrange(256)
            owner = rng.choice(owners)
            fsq.insert(word, value, owner)
            ref.insert(word, value, owner)
        elif op < 0.8:
            word = rng.choice(words)
            assert fsq.lookup(word) == ref.lookup(word)
        else:
            owner = rng.choice(owners)
            assert fsq.release(owner) == ref.release(owner)
        assert len(fsq) == len(ref.entries)
        assert fsq.is_full == (len(ref.entries) >= 8)
    assert fsq.inserts == ref.inserts
    assert fsq.hits == ref.hits
    assert fsq.max_occupancy == ref.max_occupancy


def test_fsq_generations_track_per_word_traffic():
    fsq = FilterStoreQueue()
    assert fsq.word_generations.get(0x100, 0) == 0
    fsq.insert(0x100, 1, owner_sequence=1)
    first = fsq.word_generations[0x100]
    fsq.insert(0x200, 2, owner_sequence=2)
    assert fsq.word_generations[0x100] == first  # Other-word traffic.
    fsq.release(1)
    assert fsq.word_generations[0x100] > first


def test_fsq_peek_does_not_count_hits():
    fsq = FilterStoreQueue()
    fsq.insert(0x100, 7, owner_sequence=1)
    assert fsq.peek(0x100) == 7
    assert fsq.peek(0x999) is None
    assert fsq.hits == 0


# --------------------------------------------------------------- MD cache


@pytest.mark.parametrize("seed", [7, 42])
def test_access_cycles_mirrors_access(seed):
    """``MetadataCache.access_cycles`` inlines the TLB and cache bodies for
    the memo replay path; this oracle pins the duplication — any future
    edit to ``Tlb.access``/``Cache.access`` that is not mirrored there
    fails here, before it can skew replayed timing."""
    from repro.fade.md_cache import MetadataCache

    rng = random.Random(seed)
    inlined = MetadataCache()
    reference = MetadataCache()
    addresses = [rng.randrange(0, 1 << 20) for _ in range(200)]
    for _ in range(5000):
        address = rng.choice(addresses)
        cycles, tlb_miss = inlined.access_cycles(address)
        result = reference.access(address)
        assert (cycles, tlb_miss) == (result.cycles, result.tlb_miss)
    for stats in ("cache_stats", "tlb_stats"):
        assert vars(getattr(inlined, stats)) == vars(getattr(reference, stats))


# ------------------------------------------------------------ filter memo


def _mirrored_fades(monitor_name="memcheck", non_blocking=True):
    """Two identically-programmed FADE instances, one memoized, one inline."""
    fades = []
    for memo in (True, False):
        monitor = create_monitor(monitor_name)
        fades.append(
            Fade(
                program=monitor.fade_program(),
                md_registers=monitor.critical_regs,
                md_memory=monitor.critical_mem,
                config=FadeConfig(non_blocking=non_blocking, filter_memo=memo),
            )
        )
    return fades


def _random_event(rng, sequence):
    kind = rng.random()
    if kind < 0.4:  # Load.
        return MonitoredEvent(
            event_id=event_id_for(OpClass.LOAD, 1),
            app_pc=rng.randrange(1 << 20),
            app_addr=rng.choice([0x1000, 0x1004, 0x2000, 0x2040]),
            dest_reg=rng.randrange(8),
            sequence=sequence,
        )
    if kind < 0.7:  # Store.
        return MonitoredEvent(
            event_id=event_id_for(OpClass.STORE, 1),
            app_pc=rng.randrange(1 << 20),
            app_addr=rng.choice([0x1000, 0x1004, 0x2000, 0x2040]),
            src1_reg=rng.randrange(8),
            sequence=sequence,
        )
    return MonitoredEvent(  # Two-source ALU.
        event_id=event_id_for(OpClass.ALU, 2),
        app_pc=rng.randrange(1 << 20),
        src1_reg=rng.randrange(8),
        src2_reg=rng.randrange(8),
        dest_reg=rng.randrange(8),
        sequence=sequence,
    )


@pytest.mark.parametrize("non_blocking", [True, False])
@pytest.mark.parametrize("seed", [2, 13])
def test_memoized_pipeline_matches_inline(seed, non_blocking, monkeypatch):
    """Randomized events interleaved with metadata writes, SUU-style range
    fills, INV reprogramming and handler completions: the memoized pipeline
    produces bit-identical outcomes and MD-cache/TLB statistics."""
    monkeypatch.delenv("REPRO_FORCE_INLINE_FADE", raising=False)
    rng = random.Random(seed)
    memoized, inline = _mirrored_fades(non_blocking=non_blocking)
    outstanding = []
    for sequence in range(2500):
        roll = rng.random()
        if roll < 0.08:
            # Critical-metadata churn through the tracked channels.
            address = rng.choice([0x1000, 0x1004, 0x2000, 0x2040])
            value = rng.choice([0x00, 0x01, 0x03])
            for fade in (memoized, inline):
                fade.pipeline.md_memory.write(address, value)
        elif roll < 0.14:
            register = rng.randrange(8)
            value = rng.choice([0x01, 0x03])
            for fade in (memoized, inline):
                fade.pipeline.md_registers.write(register, value)
        elif roll < 0.18:
            start = rng.choice([0x1000, 0x2000])
            for fade in (memoized, inline):
                fade.pipeline.md_memory.bulk_set(start, 64, 0x01)
        elif roll < 0.20:
            value = rng.choice([0x01, 0x03])
            for fade in (memoized, inline):
                fade.write_invariant(0, value)
        elif roll < 0.25 and outstanding:
            done = outstanding.pop(rng.randrange(len(outstanding)))
            for fade in (memoized, inline):
                fade.handler_completed(done)
        else:
            event = _random_event(rng, sequence)
            a = memoized.process_event(event)
            b = inline.process_event(event)
            assert a == b, f"divergence at #{sequence}: {a} vs {b}"
            if not a.filtered:
                outstanding.append(sequence)
                if len(outstanding) > 8:
                    done = outstanding.pop(0)
                    for fade in (memoized, inline):
                        fade.handler_completed(done)
    assert memoized.pipeline.md_cache.cache_stats.hits == (
        inline.pipeline.md_cache.cache_stats.hits
    )
    assert memoized.pipeline.md_cache.cache_stats.misses == (
        inline.pipeline.md_cache.cache_stats.misses
    )
    assert memoized.pipeline.md_cache.tlb_stats.hits == (
        inline.pipeline.md_cache.tlb_stats.hits
    )
    assert memoized.pipeline.filter_logic.comparisons == (
        inline.pipeline.filter_logic.comparisons
    )
    if non_blocking:
        assert memoized.fsq.hits == inline.fsq.hits
        assert memoized.fsq.inserts == inline.fsq.inserts
    # The memo actually engaged (otherwise this test proves nothing).
    pipeline = memoized.pipeline
    assert pipeline.memo_hits + pipeline.memo_value_hits > 0
    assert inline.pipeline.memo_hits + inline.pipeline.memo_value_hits == 0


def test_generation_invalidation_changes_decision(monkeypatch):
    """A write to the exact register a cached decision read flips the
    outcome; writes elsewhere leave the cached decision valid."""
    monkeypatch.delenv("REPRO_FORCE_INLINE_FADE", raising=False)
    memoized, inline = _mirrored_fades()
    event = MonitoredEvent(
        event_id=event_id_for(OpClass.ALU, 2),
        app_pc=0, src1_reg=1, src2_reg=2, dest_reg=3, sequence=0,
    )
    first = memoized.process_event(event)
    assert first == inline.process_event(event)
    assert first.filtered  # All registers default to DEFINED.
    again = memoized.process_event(event)
    assert again == inline.process_event(event)
    # Invalidate: make src2 undefined; the clean check must now fail.
    for fade in (memoized, inline):
        fade.pipeline.md_registers.write(2, 0x01)
    third = memoized.process_event(event)
    assert third == inline.process_event(event)
    assert not third.filtered


def test_monitor_footprint_declarations():
    """Every registered monitor declares a tracked-channel footprint and
    memo safety (the simulator's fallback gate relies on the default)."""
    for name in MONITOR_NAMES:
        monitor = create_monitor(name)
        assert monitor.filter_memo_safe is True
        assert monitor.metadata_write_footprint <= {"regs", "mem", "inv"}


# -------------------------------------------------------------- telemetry


def test_fusion_telemetry_counts_fused_runs(monkeypatch):
    monkeypatch.delenv("REPRO_FORCE_INLINE_FADE", raising=False)
    profile = get_profile("astar")
    trace = generate_trace(profile, 1200, seed=5)
    monitor = create_monitor("memcheck")
    fusion_stats.reset()
    MonitoringSimulation(
        trace, monitor, SystemConfig(fade_enabled=True, engine="event"),
        profile,
    ).run()
    assert fusion_stats.runs > 0
    assert fusion_stats.fused_events > 0
    assert fusion_stats.fused_cycles >= fusion_stats.runs
    assert sum(fusion_stats.run_lengths.values()) == fusion_stats.runs
    assert (
        sum(k * v for k, v in fusion_stats.run_lengths.items())
        == fusion_stats.fused_events
    )
