"""Crash-safe execution: snapshot determinism, restore parity (including
in a fresh spawn-style interpreter), corruption tolerance, GC policy, and
the runner-cache aliasing regression for restored simulations."""

import base64
import json
import os
import subprocess
import sys

import pytest

from repro.api import (
    ExperimentSettings,
    ResultStore,
    RunnerCache,
    RunSpec,
    execute_spec,
)
from repro.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointStore,
    active_checkpoint_runtime,
    decode_checkpoint,
    decode_meta,
    encode_checkpoint,
    install_checkpoint_runtime,
    uninstall_checkpoint_runtime,
)
from repro.system.config import SystemConfig
from repro.verify.oracle import result_digest

TINY = ExperimentSettings(num_instructions=2000, seed=13)
SPEC = RunSpec("astar", "addrcheck", SystemConfig(), TINY)
EVERY = 400


class _Abort(Exception):
    """Abandon a run right after its first checkpoint write."""


class _AbortAfterFirstPut:
    """CheckpointStore proxy that crashes the run once a blob exists —
    the in-process stand-in for a worker dying mid-spec."""

    def __init__(self, store: CheckpointStore) -> None:
        self._store = store

    def __getattr__(self, name):
        return getattr(self._store, name)

    def put(self, spec, state) -> None:
        self._store.put(spec, state)
        raise _Abort


def _abort_after_first_checkpoint(store, spec=SPEC, cache=None) -> None:
    """Run ``spec`` until its first checkpoint lands in ``store``."""
    with pytest.raises(_Abort):
        execute_spec(
            spec,
            cache,
            checkpoint_every=EVERY,
            checkpoint_store=_AbortAfterFirstPut(store),
        )


@pytest.fixture(autouse=True)
def _no_ambient_runtime():
    """Tests control checkpointing explicitly, never via the environment."""
    uninstall_checkpoint_runtime()
    yield
    uninstall_checkpoint_runtime()


@pytest.fixture()
def store(tmp_path):
    ckpt = CheckpointStore(tmp_path / "ckpt")
    yield ckpt
    ckpt.close()


class TestSnapshotDeterminism:
    def test_same_cycle_same_state_hash(self, tmp_path):
        # Two independent runs of the same spec checkpoint at the same
        # instruction threshold and must produce byte-identical pickled
        # state (compared via the envelope's content hash).  In-process
        # only: across interpreters PYTHONHASHSEED can reorder set
        # iteration inside the pickle, which is why cross-process parity
        # is asserted on *result digests*, not state hashes.
        hashes = []
        for leg in ("a", "b"):
            ckpt = CheckpointStore(tmp_path / leg)
            try:
                _abort_after_first_checkpoint(ckpt, cache=RunnerCache())
                (entry,) = ckpt.entries()
                assert entry["valid"]
                hashes.append(
                    decode_meta(ckpt._backend.read(entry["key"]))["state_hash"]
                )
            finally:
                ckpt.close()
        assert hashes[0] == hashes[1]

    def test_snapshot_metadata_progress(self, store):
        _abort_after_first_checkpoint(store)
        (entry,) = store.entries()
        assert entry["engine"] == "event"
        assert entry["app_index"] > 0
        assert entry["cycle"] > 0


class TestRestoreParity:
    def test_resumed_run_bit_identical(self, store):
        cold = result_digest(execute_spec(SPEC, RunnerCache()))
        _abort_after_first_checkpoint(store)
        resumed = execute_spec(
            SPEC, checkpoint_every=EVERY, checkpoint_store=store
        )
        assert result_digest(resumed) == cold
        meta = resumed.resume_metadata
        assert meta["resumed_from_cycle"] > 0
        assert 0.0 < meta["recompute_fraction"] < 1.0
        # Completion retires the checkpoint: nothing left to restore.
        assert store.entries() == []
        counters = store.stats()
        assert counters["checkpoints_restored"] == 1
        assert counters["checkpoints_completed"] == 1

    def test_restore_in_fresh_interpreter(self, store, tmp_path):
        # The spawn-context concern: a brand-new interpreter that never
        # built this simulation must resume from the on-disk blob alone
        # and finish bit-identical to a cold run.
        cold = result_digest(execute_spec(SPEC, RunnerCache()))
        _abort_after_first_checkpoint(store)
        script = (
            "import json, sys\n"
            "from repro.api import RunSpec, execute_spec\n"
            "from repro.checkpoint import CheckpointStore\n"
            "from repro.verify.oracle import result_digest\n"
            "spec = RunSpec.from_json(sys.stdin.read())\n"
            "store = CheckpointStore(sys.argv[1])\n"
            "result = execute_spec(\n"
            f"    spec, checkpoint_every={EVERY}, checkpoint_store=store\n"
            ")\n"
            "print(result_digest(result))\n"
            "print(json.dumps(result.resume_metadata))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(__file__), os.pardir, "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        completed = subprocess.run(
            [sys.executable, "-c", script, str(store.path)],
            input=SPEC.to_json(),
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        digest, meta_line = completed.stdout.strip().splitlines()
        assert digest == cold
        assert json.loads(meta_line)["resumed_from_cycle"] > 0

    def test_rejected_state_degrades_to_cold_recompute(self, store):
        # A blob that decodes fine but that the simulation itself refuses
        # (here: a stale SIM_STATE_VERSION) is discarded and the run
        # degrades to a cold recompute — never an error.
        _abort_after_first_checkpoint(store)
        record = store.get(SPEC)
        stale = dict(record["state"], version=-1)
        store.put(SPEC, stale)
        cold = result_digest(execute_spec(SPEC, RunnerCache()))
        resumed = execute_spec(
            SPEC, checkpoint_every=EVERY, checkpoint_store=store
        )
        assert result_digest(resumed) == cold
        assert getattr(resumed, "resume_metadata", None) is None
        assert store.stats()["checkpoints_discarded"] >= 1


class TestInvalidBlobs:
    def _cold_digest(self):
        return result_digest(execute_spec(SPEC, RunnerCache()))

    def _assert_cold_recompute(self, store):
        cold = self._cold_digest()
        result = execute_spec(
            SPEC, checkpoint_every=EVERY, checkpoint_store=store
        )
        assert result_digest(result) == cold
        assert getattr(result, "resume_metadata", None) is None

    def test_corrupt_blob_is_a_miss(self, store):
        key = store.key(SPEC)
        store._backend.write(key, "\x00not json at all")
        assert store.get(SPEC) is None
        # The invalid blob was deleted on read, and journalled.
        assert store._backend.read(key) is None
        assert store.stats()["checkpoints_discarded"] == 1
        self._assert_cold_recompute(store)

    def test_truncated_blob_is_a_miss(self, store):
        _abort_after_first_checkpoint(store)
        key = store.key(SPEC)
        payload = store._backend.read(key)
        store._backend.write(key, payload[: len(payload) // 3])
        assert store.get(SPEC) is None
        self._assert_cold_recompute(store)

    def test_stale_schema_is_a_miss(self, store):
        _abort_after_first_checkpoint(store)
        key = store.key(SPEC)
        header_line, blob_text = store._backend.read(key).split("\n", 1)
        header = json.loads(header_line)
        header["schema"] = CHECKPOINT_SCHEMA_VERSION + 999
        store._backend.write(
            key, json.dumps(header, sort_keys=True) + "\n" + blob_text
        )
        assert decode_meta(store._backend.read(key)) is None
        assert store.get(SPEC) is None
        self._assert_cold_recompute(store)

    def test_tampered_state_fails_hash_check(self, store):
        _abort_after_first_checkpoint(store)
        key = store.key(SPEC)
        header_line, blob_text = store._backend.read(key).split("\n", 1)
        blob = bytearray(base64.b64decode(blob_text))
        blob[len(blob) // 2] ^= 0xFF
        tampered = base64.b64encode(bytes(blob)).decode("ascii")
        store._backend.write(key, header_line + "\n" + tampered)
        # The header still decodes (listing stays cheap and optimistic) but
        # the full restore path must reject the tampered state.
        assert decode_meta(store._backend.read(key)) is not None
        assert store.get(SPEC) is None
        self._assert_cold_recompute(store)

    def test_wrong_key_envelope_rejected(self):
        payload = encode_checkpoint("key-a", {"engine": "event"})
        assert decode_checkpoint(payload, key="key-a") is not None
        assert decode_checkpoint(payload, key="key-b") is None


class TestGarbageCollection:
    def test_gc_keeps_newest_valid_unfinished(self, store, tmp_path):
        # The one checkpoint of an in-progress spec is exactly what a
        # retry needs: GC must never touch it.
        _abort_after_first_checkpoint(store)
        results = ResultStore(tmp_path / "results")
        try:
            swept = store.gc(results)
        finally:
            results.close()
        assert swept == {
            "removed_invalid": 0,
            "removed_completed": 0,
            "kept": 1,
        }
        assert len(store.entries()) == 1

    def test_gc_sweeps_invalid_and_completed(self, store, tmp_path):
        other = SPEC.replace(monitor="memleak")
        _abort_after_first_checkpoint(store)
        _abort_after_first_checkpoint(store, spec=other)
        store._backend.write(store.key(SPEC), "torn{")
        results = ResultStore(tmp_path / "results")
        try:
            # ``other`` finished elsewhere: its result exists, so its
            # checkpoint is superseded scaffolding.
            results.put(other, execute_spec(other, RunnerCache()))
            swept = store.gc(results)
        finally:
            results.close()
        assert swept == {
            "removed_invalid": 1,
            "removed_completed": 1,
            "kept": 0,
        }
        assert store.entries() == []

    def test_put_replaces_prior_checkpoint(self, store):
        # Writing checkpoint N+1 is the GC of checkpoint N — the store
        # holds exactly one live blob per key.
        result = execute_spec(
            SPEC, checkpoint_every=EVERY, checkpoint_store=store
        )
        assert result.instructions > 0
        counters = store.stats()
        assert counters["checkpoints_written"] >= 2
        assert counters["entries"] == 0  # completed → retired


class TestRuntimeDiscovery:
    def test_install_uninstall_round_trip(self, tmp_path):
        assert active_checkpoint_runtime() is None
        install_checkpoint_runtime(tmp_path / "ckpt", 123)
        runtime = active_checkpoint_runtime()
        assert runtime is not None
        found_store, every = runtime
        assert every == 123
        assert str(found_store.path) == str(tmp_path / "ckpt")
        uninstall_checkpoint_runtime()
        assert active_checkpoint_runtime() is None


class TestRunnerCacheAliasing:
    def test_restore_never_corrupts_cached_plan(self, tmp_path):
        # Satellite regression: snapshot() excludes the cache-held
        # DeliveryPlan/schedule and restore() only *reads* them, so an
        # abort → restore cycle through a shared RunnerCache must leave
        # the cache able to serve bit-identical cold runs afterwards.
        cache = RunnerCache()
        baseline = result_digest(execute_spec(SPEC, cache))
        plan_before = cache.plan(
            SPEC.benchmark, SPEC.settings, SPEC.monitor, SPEC.resolved_profile()
        )
        ckpt = CheckpointStore(tmp_path / "ckpt")
        try:
            _abort_after_first_checkpoint(ckpt, cache=cache)
            resumed = execute_spec(
                SPEC, cache, checkpoint_every=EVERY, checkpoint_store=ckpt
            )
        finally:
            ckpt.close()
        assert result_digest(resumed) == baseline
        plan_after = cache.plan(
            SPEC.benchmark, SPEC.settings, SPEC.monitor, SPEC.resolved_profile()
        )
        # Same cached object, still serving bit-identical cold runs.
        assert plan_after is plan_before
        assert result_digest(execute_spec(SPEC, cache)) == baseline
