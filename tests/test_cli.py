"""Tests for the command-line interface."""

import json

import pytest

from repro.api import ResultSet, register_monitor
from repro.cli import build_parser, main
from repro.monitors import MONITOR_REGISTRY
from repro.monitors.addrcheck import AddrCheck


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.benchmark == "astar"
        assert args.monitor == "memleak"
        assert not args.no_fade

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--benchmark", "nonesuch"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "astar" in out and "memleak" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "FADE logic" in out and "MD cache" in out

    def test_profile_sim_wraps_command(self, capsys):
        assert main(["--profile-sim", "list"]) == 0
        captured = capsys.readouterr()
        assert "astar" in captured.out
        # The cProfile report goes to stderr.
        assert "cumulative" in captured.err

    def test_run_fade(self, capsys):
        assert main(["run", "-n", "2500", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        assert "filtered=" in out

    def test_run_unaccelerated(self, capsys):
        assert main(
            ["run", "-n", "2500", "--no-fade", "--monitor", "addrcheck"]
        ) == 0
        out = capsys.readouterr().out
        assert "unaccelerated" in out
        assert "filtered=" not in out  # No FADE statistics block.

    def test_run_blocking_two_core_inorder(self, capsys):
        assert main(
            ["run", "-n", "2000", "--blocking", "--topology", "two-core",
             "--core", "inorder", "--benchmark", "water",
             "--monitor", "atomcheck"]
        ) == 0
        out = capsys.readouterr().out
        assert "blocking FADE" in out

    def test_table2(self, capsys):
        assert main(["table2", "-n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "filtering %" in out
        for monitor in ("addrcheck", "memleak"):
            assert monitor in out


class TestExecutionFlags:
    def test_run_out_writes_loadable_resultset(self, capsys, tmp_path):
        out_path = tmp_path / "run.json"
        assert main(["run", "-n", "2000", "--out", str(out_path)]) == 0
        assert "written to" in capsys.readouterr().out
        results = ResultSet.load(out_path)
        assert len(results) == 1
        record = results[0]
        assert record.spec.benchmark == "astar"
        assert record.spec.settings.num_instructions == 2000
        assert record.result.slowdown > 0
        # The file is plain JSON, inspectable by other tools.
        assert json.loads(out_path.read_text())["records"]

    def test_run_rejects_jobs_flag(self, capsys):
        # `run` is always a single spec; --jobs only exists on grid commands.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--jobs", "2"])
        capsys.readouterr()

    def test_table2_with_jobs_matches_serial(self, capsys, tmp_path):
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(["table2", "-n", "1500", "--out", str(serial_path)]) == 0
        assert main(
            ["table2", "-n", "1500", "--jobs", "2", "--out", str(parallel_path)]
        ) == 0
        capsys.readouterr()
        assert ResultSet.load(serial_path) == ResultSet.load(parallel_path)

    def test_out_failure_reports_cleanly(self, capsys):
        assert main(
            ["run", "-n", "1500", "--out", "/proc/nope/results.json"]
        ) == 1
        captured = capsys.readouterr()
        assert "could not write" in captured.err

    def test_registered_monitor_runnable_through_cli(self, capsys):
        class CliCheck(AddrCheck):
            pass

        register_monitor("clicheck", CliCheck)
        try:
            assert main(
                ["run", "-n", "2000", "--monitor", "clicheck",
                 "--benchmark", "mcf"]
            ) == 0
            out = capsys.readouterr().out
            assert "slowdown" in out
        finally:
            MONITOR_REGISTRY.unregister("clicheck")

    def test_registered_monitor_appears_in_list(self, capsys):
        register_monitor("listcheck", AddrCheck, replace=True)
        try:
            assert main(["list"]) == 0
            assert "listcheck" in capsys.readouterr().out
        finally:
            MONITOR_REGISTRY.unregister("listcheck")
