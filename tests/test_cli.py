"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.benchmark == "astar"
        assert args.monitor == "memleak"
        assert not args.no_fade

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--benchmark", "nonesuch"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "astar" in out and "memleak" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "FADE logic" in out and "MD cache" in out

    def test_run_fade(self, capsys):
        assert main(["run", "-n", "2500", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        assert "filtered=" in out

    def test_run_unaccelerated(self, capsys):
        assert main(
            ["run", "-n", "2500", "--no-fade", "--monitor", "addrcheck"]
        ) == 0
        out = capsys.readouterr().out
        assert "unaccelerated" in out
        assert "filtered=" not in out  # No FADE statistics block.

    def test_run_blocking_two_core_inorder(self, capsys):
        assert main(
            ["run", "-n", "2000", "--blocking", "--topology", "two-core",
             "--core", "inorder", "--benchmark", "water",
             "--monitor", "atomcheck"]
        ) == 0
        out = capsys.readouterr().out
        assert "blocking FADE" in out

    def test_table2(self, capsys):
        assert main(["table2", "-n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "filtering %" in out
        for monitor in ("addrcheck", "memleak"):
            assert monitor in out
