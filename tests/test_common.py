"""Tests for repro.common: RNG determinism, units, errors."""

import pytest

from repro.common import (
    ConfigurationError,
    DeterministicRng,
    ProgrammingError,
    QueueFullError,
    ReproError,
    SimulationError,
    align_down,
    align_up,
    derive_seed,
    words_in_range,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_labels_matter(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_boundaries_are_not_ambiguous(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")


class TestDeterministicRng:
    def test_same_labels_same_stream(self):
        a = DeterministicRng(5, "x")
        b = DeterministicRng(5, "x")
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_labels_diverge(self):
        a = DeterministicRng(5, "x")
        b = DeterministicRng(5, "y")
        assert [a.randint(0, 1000) for _ in range(10)] != [
            b.randint(0, 1000) for _ in range(10)
        ]

    def test_child_streams_are_independent_of_parent_consumption(self):
        parent = DeterministicRng(5, "p")
        child = parent.child("c")
        first = [child.randint(0, 1000) for _ in range(5)]
        # A fresh child from an identically-consumed parent matches.
        parent2 = DeterministicRng(5, "p")
        child2 = parent2.child("c")
        assert first == [child2.randint(0, 1000) for _ in range(5)]

    def test_chance_extremes(self):
        rng = DeterministicRng(1)
        assert not rng.chance(0.0)
        assert rng.chance(1.0)
        assert not rng.chance(-0.5)
        assert rng.chance(1.5)

    def test_geometric_mean_is_roughly_right(self):
        rng = DeterministicRng(3, "geo")
        samples = [rng.geometric(8.0) for _ in range(3000)]
        mean = sum(samples) / len(samples)
        assert 6.5 < mean < 9.5

    def test_geometric_minimum(self):
        rng = DeterministicRng(3)
        assert rng.geometric(0.5) == 1

    def test_pareto_int_minimum(self):
        rng = DeterministicRng(4)
        assert all(rng.pareto_int(16) >= 16 for _ in range(100))

    def test_weighted_choice_respects_zero_weight(self):
        rng = DeterministicRng(6)
        picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}


class TestUnits:
    def test_align_down(self):
        assert align_down(13, 4) == 12
        assert align_down(12, 4) == 12
        assert align_down(0, 8) == 0

    def test_align_up(self):
        assert align_up(13, 4) == 16
        assert align_up(12, 4) == 12

    def test_words_in_range_covers_partial_words(self):
        words = list(words_in_range(5, 6))  # Bytes 5..10 span words 4 and 8.
        assert words == [4, 8]

    def test_words_in_range_empty(self):
        assert list(words_in_range(16, 0)) == []

    def test_words_in_range_exact(self):
        assert list(words_in_range(8, 8)) == [8, 12]


class TestErrors:
    @pytest.mark.parametrize(
        "error",
        [ConfigurationError, ProgrammingError, QueueFullError, SimulationError],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)
