"""The golden conformance corpus: the committed digests stay valid, blessing
is deterministic, and drift/schema mismatches are reported usefully.
"""

import json

from repro import cli
from repro.verify.corpus import (
    ConformanceCorpus,
    conformance_specs,
    default_corpus_dir,
)
from repro.workload.packed import TRACE_SCHEMA_VERSION


class TestCommittedCorpus:
    def test_committed_corpus_exists(self):
        corpus = ConformanceCorpus()
        assert corpus.path == default_corpus_dir()
        names = {name for name, _ in conformance_specs()}
        files = {entry.stem for entry in corpus.entry_files()}
        assert files == names, (
            "tests/golden/ is out of sync with conformance_specs(); "
            "run `repro conformance bless` and commit the result"
        )

    def test_committed_digests_still_hold(self):
        # The tier-1 conformance gate: every blessed cell re-simulates to
        # its committed digest on the current code.
        report = ConformanceCorpus().run()
        assert report.ok, report.summary()
        assert report.checked == len(conformance_specs())

    def test_blessing_is_deterministic(self, tmp_path):
        corpus = ConformanceCorpus(tmp_path / "golden")
        corpus.bless()
        committed = {
            entry.stem: json.loads(entry.read_text())["digest"]
            for entry in ConformanceCorpus().entry_files()
        }
        fresh = {
            entry.stem: json.loads(entry.read_text())["digest"]
            for entry in corpus.entry_files()
        }
        assert fresh == committed


class TestCorpusFailureModes:
    def _blessed(self, tmp_path) -> ConformanceCorpus:
        corpus = ConformanceCorpus(tmp_path / "golden")
        corpus.bless()
        return corpus

    def test_empty_corpus_reports_missing(self, tmp_path):
        report = ConformanceCorpus(tmp_path / "nowhere").run()
        assert not report.ok
        assert report.failures[0].kind == "missing"

    def test_tampered_digest_is_caught(self, tmp_path):
        corpus = self._blessed(tmp_path)
        victim = corpus.entry_files()[0]
        entry = json.loads(victim.read_text())
        entry["digest"] = "0" * 64
        victim.write_text(json.dumps(entry))
        report = corpus.run()
        assert [f.kind for f in report.failures] == ["digest"]
        assert report.failures[0].name == victim.stem

    def test_schema_drift_requires_reblessing(self, tmp_path):
        corpus = self._blessed(tmp_path)
        victim = corpus.entry_files()[0]
        entry = json.loads(victim.read_text())
        entry["trace_schema"] = TRACE_SCHEMA_VERSION + 999
        victim.write_text(json.dumps(entry))
        report = corpus.run()
        assert [f.kind for f in report.failures] == ["schema"]
        assert "re-bless" in report.failures[0].detail

    def test_corrupt_entry_is_reported(self, tmp_path):
        corpus = self._blessed(tmp_path)
        corpus.entry_files()[0].write_text("{not json")
        report = corpus.run()
        assert [f.kind for f in report.failures] == ["corrupt"]

    def test_bless_prunes_stale_entries_only(self, tmp_path):
        corpus = self._blessed(tmp_path)
        # A retired golden entry is pruned...
        stale = corpus.path / "retired-cell.json"
        survivor = corpus.entry_files()[0]
        stale.write_text(survivor.read_text())
        # ...but unrelated JSON in the directory is never deleted.
        bystander = corpus.path / "saved-results.json"
        bystander.write_text('{"records": []}')
        corpus.bless()
        assert not stale.exists()
        assert bystander.exists()


class TestConformanceCli:
    def test_run_and_bless_round_trip(self, tmp_path, capsys):
        corpus_dir = tmp_path / "golden"
        assert cli.main(["conformance", "bless", "--corpus", str(corpus_dir)]) == 0
        assert cli.main(["conformance", "run", "--corpus", str(corpus_dir)]) == 0
        out = capsys.readouterr().out
        assert "blessed" in out and "OK" in out

    def test_run_fails_on_drift(self, tmp_path, capsys):
        corpus_dir = tmp_path / "golden"
        corpus = ConformanceCorpus(corpus_dir)
        corpus.bless()
        victim = corpus.entry_files()[0]
        entry = json.loads(victim.read_text())
        entry["digest"] = "f" * 64
        victim.write_text(json.dumps(entry))
        assert cli.main(["conformance", "run", "--corpus", str(corpus_dir)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_never_writes_user_result_cache(self, tmp_path, monkeypatch):
        # Satellite: $REPRO_RESULT_CACHE is honoured read-only; the cache
        # directory is not even created by verification commands.
        cache_dir = tmp_path / "user-cache"
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(cache_dir))
        corpus_dir = tmp_path / "golden"
        assert cli.main(["conformance", "bless", "--corpus", str(corpus_dir)]) == 0
        assert cli.main(["conformance", "run", "--corpus", str(corpus_dir)]) == 0
        assert not cache_dir.exists()

    def test_fuzz_cli_never_writes_user_result_cache(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "user-cache"
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(cache_dir))
        report_dir = tmp_path / "fuzz-report"
        assert (
            cli.main(
                [
                    "fuzz",
                    "--budget",
                    "2",
                    "--seed",
                    "4",
                    "--quick",
                    "--report",
                    str(report_dir),
                ]
            )
            == 0
        )
        assert not cache_dir.exists()
        coverage = json.loads((report_dir / "coverage.json").read_text())
        assert coverage["cases_run"] == 2
        assert coverage["coverage_fraction"] > 0.0

    def test_fuzz_cli_rejects_malformed_budget(self, tmp_path, capsys):
        for bad in ("60m", "s", "-5", "0", "0s"):
            assert (
                cli.main(
                    ["fuzz", "--budget", bad, "--quick",
                     "--report", str(tmp_path / "r")]
                )
                == 2
            )
            assert "invalid --budget" in capsys.readouterr().err

    def test_fuzz_cli_min_coverage_gate(self, tmp_path):
        assert (
            cli.main(
                [
                    "fuzz",
                    "--budget",
                    "1",
                    "--seed",
                    "4",
                    "--quick",
                    "--min-coverage",
                    "0.99",
                    "--report",
                    str(tmp_path / "report"),
                ]
            )
            == 1
        )
