"""Tests for the core timing models and retirement schedules."""

import pytest

from repro.cores import CORE_PARAMETERS, CoreType, RetireModel
from repro.cores.retire import app_alone_cycles
from repro.isa.instruction import Instruction
from repro.workload import generate_trace, get_profile


def schedule_for(benchmark="astar", core=CoreType.OOO4, n=3000, seed=3, bubbles=False):
    profile = get_profile(benchmark)
    trace = generate_trace(profile, n, seed=seed)
    model = RetireModel(
        core_type=core,
        bubble_prob=profile.bubble_prob if bubbles else 0.0,
        bubble_mean=profile.bubble_mean,
    )
    return trace, model.schedule(trace)


class TestCoreParameters:
    def test_table1_widths(self):
        assert CORE_PARAMETERS[CoreType.INORDER].width == 1
        assert CORE_PARAMETERS[CoreType.OOO2].width == 2
        assert CORE_PARAMETERS[CoreType.OOO4].width == 4

    def test_table1_robs(self):
        assert CORE_PARAMETERS[CoreType.OOO2].rob_entries == 48
        assert CORE_PARAMETERS[CoreType.OOO4].rob_entries == 96

    def test_handler_ipc_scales_roughly_3x(self):
        ratio = (
            CORE_PARAMETERS[CoreType.OOO4].handler_ipc
            / CORE_PARAMETERS[CoreType.INORDER].handler_ipc
        )
        assert 2.5 <= ratio <= 3.5  # Section 7.3: "up to 3x faster".


class TestRetireSchedule:
    def test_monotone_nondecreasing(self):
        _, schedule = schedule_for()
        assert all(b >= a for a, b in zip(schedule, schedule[1:]))

    def test_retire_width_respected(self):
        """No more than W instructions may retire in any single cycle."""
        trace, schedule = schedule_for(core=CoreType.OOO4)
        width = CORE_PARAMETERS[CoreType.OOO4].width
        instruction_times = [
            time
            for time, item in zip(schedule, trace)
            if isinstance(item, Instruction)
        ]
        from collections import Counter

        per_cycle = Counter(int(time) for time in instruction_times)
        assert max(per_cycle.values()) <= width

    def test_wider_core_is_no_slower(self):
        _, narrow = schedule_for(core=CoreType.INORDER)
        _, wide = schedule_for(core=CoreType.OOO4)
        assert app_alone_cycles(wide) <= app_alone_cycles(narrow)

    def test_ooo2_between_inorder_and_ooo4(self):
        _, inorder = schedule_for(core=CoreType.INORDER)
        _, ooo2 = schedule_for(core=CoreType.OOO2)
        _, ooo4 = schedule_for(core=CoreType.OOO4)
        assert app_alone_cycles(ooo4) <= app_alone_cycles(ooo2)
        assert app_alone_cycles(ooo2) <= app_alone_cycles(inorder)

    def test_deterministic(self):
        _, first = schedule_for(bubbles=True)
        _, second = schedule_for(bubbles=True)
        assert first == second

    def test_bubbles_slow_the_core(self):
        _, without = schedule_for(bubbles=False)
        _, with_bubbles = schedule_for(benchmark="gobmk", bubbles=True)
        _, gobmk_without = schedule_for(benchmark="gobmk", bubbles=False)
        assert app_alone_cycles(with_bubbles) > app_alone_cycles(gobmk_without)

    def test_high_level_events_ride_along(self):
        trace, schedule = schedule_for(benchmark="omnetpp")
        previous = 0.0
        for time, item in zip(schedule, trace):
            if not isinstance(item, Instruction):
                assert time == previous
            previous = time

    def test_mcf_is_memory_bound(self):
        """mcf's schedule must be far slower per instruction than hmmer's
        (the Figure 2 IPC spread)."""
        _, mcf = schedule_for(benchmark="mcf", n=4000)
        _, hmmer = schedule_for(benchmark="hmmer", n=4000)
        assert app_alone_cycles(mcf) > 2.5 * app_alone_cycles(hmmer)
