"""Bit-identity of the event and vector engines against the naive stepper.

The event engine (``SystemConfig.engine="event"``, the default) must
reproduce the reference one-cycle-per-iteration stepper *exactly* — the
whole serialized :class:`RunResult`, including queue occupancy histograms,
rejection counts, the cycle breakdown, FADE wait/drain counters and bug
reports — because it only jumps across provably quiet intervals and runs
every active cycle through the shared reference stepper.  The vector
engine layers batched NumPy prediction kernels on top of the event engine
and must stay equally exact (it degrades to the event engine when NumPy
is unavailable, so these tests pass either way).
"""

import functools

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.cores import CoreType
from repro.isa.events import MonitoredEvent
from repro.isa.instruction import Instruction
from repro.monitors import MONITOR_NAMES, create_monitor
from repro.system import SystemConfig, Topology, simulate
from repro.system.simulator import simulate_warmed
from repro.workload import generate_trace, get_profile


@functools.lru_cache(maxsize=None)
def cached_trace(benchmark, n=1500, seed=11):
    return generate_trace(get_profile(benchmark), n, seed=seed)


def bench_for(monitor_name):
    return "water" if monitor_name == "atomcheck" else "astar"


ENGINES = ("naive", "event", "vector")


def run_engines(
    monitor_name, benchmark, n=1500, seed=11, warmup=0.0,
    engines=ENGINES, **config_kwargs
):
    profile = get_profile(benchmark)
    trace = cached_trace(benchmark, n, seed)
    results = {}
    for engine in engines:
        config = SystemConfig(engine=engine, **config_kwargs)
        monitor = create_monitor(monitor_name)
        if warmup:
            result = simulate_warmed(
                trace, monitor, config, profile, warmup_fraction=warmup
            )
        else:
            result = simulate(trace, monitor, config, profile)
        results[engine] = result
    return results


def assert_engines_identical(results):
    reference = results["naive"].to_dict()
    for engine, result in results.items():
        assert result.to_dict() == reference, f"engine {engine!r} diverges"


def run_both(monitor_name, benchmark, **kwargs):
    results = run_engines(monitor_name, benchmark, **kwargs)
    assert results["vector"].to_dict() == results["event"].to_dict(), (
        "vector engine diverges"
    )
    return results["naive"], results["event"]


MODES = [
    pytest.param({"fade_enabled": False}, id="unaccelerated"),
    pytest.param({"fade_enabled": True, "non_blocking": False}, id="blocking-fade"),
    pytest.param({"fade_enabled": True, "non_blocking": True}, id="non-blocking-fade"),
]


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize(
    "topology", [Topology.SINGLE_CORE_SMT, Topology.TWO_CORE],
    ids=["smt", "two-core"],
)
@pytest.mark.parametrize("monitor_name", MONITOR_NAMES)
def test_engines_bit_identical(monitor_name, topology, mode):
    """Monitors x topologies x blocking modes: full RunResult equality.

    The event engine runs with burst draining and the two-level filter
    memo enabled, the naive reference with both disabled, so this matrix
    proves the fused-memoized paths bit-identical to truly inline walks.
    """
    naive, event = run_both(
        monitor_name, bench_for(monitor_name), topology=topology, **mode
    )
    assert naive.to_dict() == event.to_dict()


# ---------------------------------------------------- burst-drain x memo


@pytest.mark.parametrize(
    "config_kwargs",
    [
        pytest.param(
            {"fade_enabled": True, "event_queue_capacity": 2},
            id="saturated-event-queue",
        ),
        pytest.param(
            {
                "fade_enabled": True,
                "topology": Topology.TWO_CORE,
                "event_queue_capacity": 4,
                "unfiltered_queue_capacity": 2,
            },
            id="two-core-tight-queues",
        ),
        pytest.param(
            {
                "fade_enabled": True,
                "non_blocking": False,
                "event_queue_capacity": 4,
            },
            id="blocking-backpressure",
        ),
        pytest.param(
            {"fade_enabled": True, "burst_gap_threshold": 1},
            id="tiny-burst-gap",
        ),
    ],
)
@pytest.mark.parametrize("monitor_name", ["memcheck", "atomcheck", "memleak"])
def test_burst_drain_memo_corners(monitor_name, config_kwargs):
    """Backpressure, blocking and burst-tracking corners of the fused
    windows: blocked-application marching, freeze/retry cycles, in-window
    unfiltered continuation, run-length gap accounting."""
    naive, event = run_both(
        monitor_name, bench_for(monitor_name), **config_kwargs
    )
    assert naive.to_dict() == event.to_dict()


def test_force_inline_event_engine_matches(monkeypatch):
    """REPRO_FORCE_INLINE_FADE=1 disables the memo and burst draining; the
    event engine must still match both the naive reference and its own
    fused-memoized results (the CI fallback-rot check)."""
    import repro.system.simulator as simulator_module

    fused_naive, fused_event = run_both("memcheck", "astar", fade_enabled=True)
    monkeypatch.setenv("REPRO_FORCE_INLINE_FADE", "1")
    simulator_module.fusion_stats.reset()
    inline_naive, inline_event = run_both(
        "memcheck", "astar", fade_enabled=True
    )
    assert simulator_module.fusion_stats.runs == 0  # Fusion really off.
    assert inline_event.to_dict() == inline_naive.to_dict()
    assert inline_event.to_dict() == fused_event.to_dict()
    assert fused_naive.to_dict() == fused_event.to_dict()


def test_memo_unsafe_monitor_falls_back_to_inline(monkeypatch):
    """A monitor that declares ``filter_memo_safe = False`` runs the inline
    per-event path (no fused windows, no vector predictor), and stays
    bit-identical."""
    import repro.system.simulator as simulator_module
    from repro.monitors import create_monitor
    from repro.workload import generate_trace, get_profile

    profile = get_profile("astar")
    trace = cached_trace("astar")
    results = {}
    for engine in ENGINES:
        monitor = create_monitor("memcheck")
        monkeypatch.setattr(type(monitor), "filter_memo_safe", False)
        simulator_module.fusion_stats.reset()
        result = simulate(
            trace, monitor, SystemConfig(fade_enabled=True, engine=engine),
            profile,
        )
        assert simulator_module.fusion_stats.runs == 0
        results[engine] = result.to_dict()
    assert results["naive"] == results["event"]
    assert results["naive"] == results["vector"]


@pytest.mark.parametrize(
    "config_kwargs",
    [
        pytest.param(
            {"core_type": CoreType.INORDER, "fade_enabled": False},
            id="inorder-unaccelerated",
        ),
        pytest.param(
            {"core_type": CoreType.OOO2, "fade_enabled": True}, id="ooo2-fade"
        ),
        pytest.param(
            {
                "fade_enabled": True,
                "event_queue_capacity": 4,
                "unfiltered_queue_capacity": 2,
            },
            id="tight-queues",
        ),
        pytest.param(
            {"fade_enabled": True, "event_queue_capacity": None},
            id="infinite-queue",
        ),
        pytest.param(
            {"fade_enabled": True, "stack_update_drain": False}, id="no-drain"
        ),
        pytest.param(
            {"fade_enabled": True, "sample_queue_occupancy": False},
            id="no-sampling",
        ),
        pytest.param(
            {"fade_enabled": True, "non_blocking": False, "fsq_capacity": 4},
            id="blocking-small-fsq",
        ),
    ],
)
def test_engines_bit_identical_config_corners(config_kwargs):
    """Backpressure-heavy and ablation configurations (gcc is call-heavy,
    exercising the SUU drain and blocked-application paths)."""
    naive, event = run_both("memleak", "gcc", **config_kwargs)
    assert naive.to_dict() == event.to_dict()


def test_engines_agree_on_cycle_limit():
    """Every engine raises the cycle-limit error for the same configuration."""
    for engine in ENGINES:
        config = SystemConfig(fade_enabled=False, max_cycles=50, engine=engine)
        with pytest.raises(SimulationError):
            simulate(
                cached_trace("astar"),
                create_monitor("memcheck"),
                config,
                get_profile("astar"),
            )


def test_unknown_engine_rejected():
    with pytest.raises(ConfigurationError):
        SystemConfig(engine="warp-drive")


# ------------------------------------------------------- simulate_warmed


@pytest.mark.parametrize("monitor_name", MONITOR_NAMES)
def test_simulate_warmed_engines_bit_identical(monitor_name):
    """The timed region after functional warmup matches bit-for-bit on
    every registered monitor."""
    naive, event = run_both(
        monitor_name, bench_for(monitor_name), warmup=0.5, fade_enabled=True
    )
    assert naive.to_dict() == event.to_dict()


@pytest.mark.parametrize("fade_enabled", [False, True])
def test_simulate_warmed_excludes_warmup_region_counts(fade_enabled):
    """Reported event/instruction counts cover only the timed region."""
    benchmark = "astar"
    profile = get_profile(benchmark)
    trace = cached_trace(benchmark)
    warmup_items = int(len(trace.items) * 0.5)
    monitor = create_monitor("memleak")
    result = simulate_warmed(
        trace,
        monitor,
        SystemConfig(fade_enabled=fade_enabled),
        profile,
        warmup_fraction=0.5,
    )

    # Recompute the timed region's composition directly from the trace.
    classifier = create_monitor("memleak")
    instructions = monitored = stack = high = 0
    for index in range(warmup_items, len(trace.items)):
        item = trace.items[index]
        if isinstance(item, Instruction):
            instructions += 1
            if classifier.wants(item):
                event = MonitoredEvent.from_instruction(item, sequence=index)
                if event.is_stack_update:
                    stack += 1
                else:
                    monitored += 1
        else:
            high += 1

    assert result.instructions == instructions
    assert result.monitored_events == monitored
    assert result.stack_update_events == stack
    assert result.high_level_events == high
    assert result.baseline_cycles > 0
    assert result.baseline_cycles < trace.num_instructions * 10


class TestSegmentedStitching:
    """Segmented execution (repro.api.segments) must stitch to results
    bit-identical to the monolithic run, per engine, across the edge
    geometries: warmed runs, single-instruction segments, K far beyond the
    trace length, and a cycle limit that trips mid-segment."""

    def _spec(self, engine, n=1500, warmup=0.5, max_cycles=None):
        from repro.api import ExperimentSettings, RunSpec

        config_kwargs = {"engine": engine}
        if max_cycles is not None:
            config_kwargs["max_cycles"] = max_cycles
        return RunSpec(
            "astar",
            "addrcheck",
            SystemConfig(**config_kwargs),
            ExperimentSettings(
                num_instructions=n, seed=11, warmup_fraction=warmup
            ),
        )

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("segments", (2, 3, 7))
    def test_segmented_matches_monolithic(self, engine, segments):
        from repro.api.cache import RunnerCache
        from repro.api.runner import execute_spec
        from repro.api.segments import run_segmented

        cache = RunnerCache()
        spec = self._spec(engine)
        mono = execute_spec(spec, cache).to_dict()
        seg = run_segmented(spec, cache, segments=segments)
        assert seg.to_dict() == mono

    @pytest.mark.parametrize("engine", ENGINES)
    def test_more_segments_than_instructions(self, engine):
        # K far beyond the timed instruction count degenerates to
        # single-instruction segments (one seam per plan boundary), and
        # must still stitch exactly.
        from repro.api.cache import RunnerCache
        from repro.api.runner import execute_spec
        from repro.api.segments import run_segmented

        cache = RunnerCache()
        spec = self._spec(engine, n=120, warmup=0.0)
        mono = execute_spec(spec, cache).to_dict()
        seg = run_segmented(spec, cache, segments=10_000)
        assert seg.to_dict() == mono

    def test_unwarmed_run_segments(self):
        from repro.api.cache import RunnerCache
        from repro.api.runner import execute_spec
        from repro.api.segments import run_segmented

        cache = RunnerCache()
        spec = self._spec("event", warmup=0.0)
        mono = execute_spec(spec, cache).to_dict()
        assert run_segmented(spec, cache, segments=4).to_dict() == mono

    def test_heavily_warmed_run_segments(self):
        from repro.api.cache import RunnerCache
        from repro.api.runner import execute_spec
        from repro.api.segments import run_segmented

        cache = RunnerCache()
        spec = self._spec("event", warmup=0.9)
        mono = execute_spec(spec, cache).to_dict()
        assert run_segmented(spec, cache, segments=3).to_dict() == mono

    @pytest.mark.parametrize("engine", ENGINES)
    def test_cycle_limit_trips_identically(self, engine):
        # A cycle limit that the monolithic run trips must trip in the
        # segmented run too — at the same cycle, regardless of which
        # segment is executing when the budget runs out.
        from repro.api.cache import RunnerCache
        from repro.api.runner import execute_spec
        from repro.api.segments import run_segmented

        cache = RunnerCache()
        spec = self._spec(engine, max_cycles=50)
        with pytest.raises(SimulationError) as mono_error:
            execute_spec(spec, cache)
        with pytest.raises(SimulationError) as seg_error:
            run_segmented(spec, cache, segments=3)
        assert str(seg_error.value) == str(mono_error.value)
