"""Tests for the event table: entry validation, 96-bit encoding, chains."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ProgrammingError
from repro.fade.event_table import (
    ENTRY_BITS,
    EVENT_TABLE_SIZE,
    EventTable,
    EventTableEntry,
    OperandRule,
    RuKind,
)
from repro.fade.update_logic import NonBlockCondition, NonBlockRule, UpdateSpec


class TestOperandRule:
    def test_rejects_wide_mask(self):
        with pytest.raises(ProgrammingError):
            OperandRule(valid=True, mask=0x1FF)

    def test_rejects_bad_md_bytes(self):
        with pytest.raises(ProgrammingError):
            OperandRule(valid=True, md_bytes=0)
        with pytest.raises(ProgrammingError):
            OperandRule(valid=True, md_bytes=5)

    def test_rejects_wide_inv_id(self):
        with pytest.raises(ProgrammingError):
            OperandRule(valid=True, inv_id=4)


class TestEventTableEntry:
    def test_cc_and_ru_are_exclusive(self):
        with pytest.raises(ProgrammingError):
            EventTableEntry(cc=True, ru=RuKind.DIRECT)

    def test_multi_shot_needs_next(self):
        with pytest.raises(ProgrammingError):
            EventTableEntry(ms=True, next_entry=0)

    def test_has_check(self):
        assert EventTableEntry(cc=True).has_check
        assert EventTableEntry(ru=RuKind.OR).has_check
        assert not EventTableEntry().has_check

    def test_rejects_wide_pc(self):
        with pytest.raises(ProgrammingError):
            EventTableEntry(handler_pc=1 << 32)


_operand_rules = st.builds(
    OperandRule,
    valid=st.booleans(),
    mem=st.booleans(),
    md_bytes=st.integers(1, 4),
    mask=st.integers(0, 255),
    inv_id=st.integers(0, 3),
)


def _entries():
    def build(s1, s2, d, kind, ms, next_entry, partial, pc, rule, cond, inv):
        cc = kind == "cc"
        ru = RuKind[kind] if kind in ("DIRECT", "OR", "AND") else RuKind.NONE
        return EventTableEntry(
            s1=s1,
            s2=s2,
            d=d,
            cc=cc,
            ru=ru,
            ms=ms,
            next_entry=next_entry if ms else next_entry,
            partial=partial,
            handler_pc=pc,
            update=UpdateSpec(rule=rule, condition=cond, inv_id=inv),
        )

    return st.builds(
        build,
        _operand_rules,
        _operand_rules,
        _operand_rules,
        st.sampled_from(["cc", "DIRECT", "OR", "AND", "none"]),
        st.just(False),  # MS needs a coherent next; keep single entries here.
        st.integers(0, EVENT_TABLE_SIZE - 1),
        st.booleans(),
        st.integers(0, (1 << 32) - 1),
        st.sampled_from(list(NonBlockRule)),
        st.sampled_from(list(NonBlockCondition)),
        st.integers(0, 3),
    )


class TestEncoding:
    @given(_entries())
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, entry):
        """Property: every entry survives the 96-bit encode/decode."""
        word = entry.encode()
        assert 0 <= word < (1 << ENTRY_BITS)
        assert EventTableEntry.decode(word) == entry

    def test_multi_shot_roundtrip(self):
        entry = EventTableEntry(cc=True, ms=True, next_entry=65, handler_pc=0xDEAD)
        assert EventTableEntry.decode(entry.encode()) == entry

    def test_decode_rejects_oversized(self):
        with pytest.raises(ProgrammingError):
            EventTableEntry.decode(1 << ENTRY_BITS)

    def test_entry_is_96_bits(self):
        assert ENTRY_BITS == 96  # Figure 6 caption.


class TestEventTable:
    def test_lookup_unprogrammed_is_none(self):
        assert EventTable().lookup(5) is None

    def test_program_and_lookup(self):
        table = EventTable()
        entry = EventTableEntry(cc=True)
        table.program(3, entry)
        assert table.lookup(3) == entry
        assert table.programmed_indices() == (3,)

    def test_out_of_range_rejected(self):
        table = EventTable()
        with pytest.raises(ProgrammingError):
            table.program(EVENT_TABLE_SIZE, EventTableEntry())
        with pytest.raises(ProgrammingError):
            table.lookup(-1)

    def test_chain_walk(self):
        table = EventTable()
        table.program(1, EventTableEntry(cc=True, ms=True, next_entry=64))
        table.program(64, EventTableEntry(cc=True))
        chain = table.chain(1)
        assert [index for index, _ in chain] == [1, 64]

    def test_chain_cycle_detected(self):
        table = EventTable()
        table.program(1, EventTableEntry(cc=True, ms=True, next_entry=64))
        table.program(64, EventTableEntry(cc=True, ms=True, next_entry=1))
        with pytest.raises(ProgrammingError):
            table.chain(1)

    def test_dangling_chain_detected(self):
        table = EventTable()
        table.program(1, EventTableEntry(cc=True, ms=True, next_entry=99))
        with pytest.raises(ProgrammingError):
            table.chain(1)

    def test_capacity_is_128(self):
        assert EVENT_TABLE_SIZE == 128  # Section 6.
