"""The fault-injection framework: seeded plans, exactly-once probing,
retry policies, and the store/runner hardening they exercise."""

import json
import os

import pytest

from repro.api import (
    ExperimentSettings,
    ParallelRunner,
    ResultStore,
    SerialRunner,
    spec_grid,
)
from repro.common.errors import ConfigurationError
from repro.faults import (
    FAULT_DIR_ENV,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    generate_plan,
    install_plan,
    probe,
    spec_fault_key,
    suppress_faults,
    uninstall_plan,
)
from repro.system.config import SystemConfig

TINY = ExperimentSettings(num_instructions=1500, seed=11)

GRID = spec_grid(
    ["astar", "mcf"],
    ["memleak", "addrcheck"],
    [SystemConfig()],
    TINY,
)


@pytest.fixture(autouse=True)
def _clean_injector():
    """Every test starts and ends with no plan installed and no env gate."""
    uninstall_plan()
    yield
    uninstall_plan()


class TestFaultPlan:
    def test_event_validation(self):
        with pytest.raises(ConfigurationError, match="kind"):
            FaultEvent("e0", "disk_on_fire", "store.write")
        with pytest.raises(ConfigurationError, match="site"):
            FaultEvent("e0", "worker_crash", "store.write")

    def test_duplicate_ids_rejected(self):
        event = FaultEvent("e0", "store_torn", "store.write", at=0)
        clash = FaultEvent("e0", "store_enospc", "store.write", at=1)
        with pytest.raises(ConfigurationError, match="duplicate"):
            FaultPlan(events=(event, clash), seed=0)

    def test_json_round_trip(self, tmp_path):
        plan = generate_plan(3, ["k0", "k1", "k2"], writes_expected=4)
        assert FaultPlan.from_json(plan.to_json()) == plan
        plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(tmp_path / "plan.json") == plan

    def test_deterministic_per_seed(self):
        keys = ["a", "b", "c", "d"]
        assert generate_plan(5, keys, writes_expected=4) == generate_plan(
            5, keys, writes_expected=4
        )
        assert generate_plan(5, keys, writes_expected=4) != generate_plan(
            6, keys, writes_expected=4
        )

    def test_ordinal_events_distinct_per_site(self):
        # Two ordinal events on one site must never share an ordinal, or
        # one of them could not possibly fire.
        for seed in range(20):
            plan = generate_plan(
                seed,
                ["k0", "k1"],
                kinds=("store_enospc", "store_torn", "sqlite_busy"),
                writes_expected=8,
            )
            for site in {event.site for event in plan.events}:
                ordinals = [
                    event.at for event in plan.for_site(site)
                    if event.key is None
                ]
                assert len(ordinals) == len(set(ordinals))

    def test_keyed_events_target_given_keys(self):
        keys = [f"spec{i}" for i in range(6)]
        plan = generate_plan(
            1, keys, kinds=("worker_crash", "worker_hang")
        )
        for event in plan.events:
            assert event.key in keys


class TestInjector:
    def test_probe_is_silent_with_no_plan(self):
        assert probe("store.write") is None
        assert probe("worker", "anything") is None

    def test_keyed_event_fires_exactly_once(self):
        plan = FaultPlan(
            events=(FaultEvent("e0", "worker_hang", "worker", key="victim"),),
            seed=0,
        )
        install_plan(plan)
        assert probe("worker", "bystander") is None
        fired = probe("worker", "victim")
        assert fired is not None and fired.kind == "worker_hang"
        assert probe("worker", "victim") is None  # claimed: never refires

    def test_ordinal_event_fires_at_nth_probe(self):
        plan = FaultPlan(
            events=(FaultEvent("e0", "store_torn", "store.write", at=2),),
            seed=0,
        )
        install_plan(plan)
        assert probe("store.write") is None
        assert probe("store.write") is None
        assert probe("store.write").kind == "store_torn"
        assert probe("store.write") is None

    def test_suppress_faults_hides_plan_and_env(self, tmp_path):
        plan = FaultPlan(
            events=(FaultEvent("e0", "store_torn", "store.write", at=0),),
            seed=0,
        )
        install_plan(plan, root=tmp_path / "faults")
        with suppress_faults():
            assert FAULT_DIR_ENV not in os.environ
            assert probe("store.write") is None  # ordinal 0 not consumed...
        assert os.environ[FAULT_DIR_ENV] == str(tmp_path / "faults")
        assert probe("store.write") is not None  # ...so it fires now

    def test_claims_shared_through_directory(self, tmp_path):
        # Two injectors over the same root model two processes: the claim
        # file makes the event fire in exactly one of them.
        root = tmp_path / "faults"
        plan = FaultPlan(
            events=(FaultEvent("e0", "store_torn", "store.write", at=0),),
            seed=0,
        )
        install_plan(plan, root=root)
        other = FaultInjector.from_dir(root)
        assert other.plan == plan
        assert other.maybe_fire("store.write") is not None
        assert probe("store.write") is None  # claimed by "the other process"
        summary = other.summary()
        assert summary["fired"] == 1 and summary["pending"] == []

    def test_env_gate_discovers_plan_lazily(self, tmp_path):
        root = tmp_path / "faults"
        plan = FaultPlan(
            events=(FaultEvent("e0", "store_torn", "store.write", at=0),),
            seed=0,
        )
        FaultInjector(plan, root=root).save()
        uninstall_plan()  # Reset module state; now only the env points at it.
        os.environ[FAULT_DIR_ENV] = str(root)
        try:
            assert probe("store.write") is not None
        finally:
            uninstall_plan()

    def test_journal_records_fired_events(self, tmp_path):
        root = tmp_path / "faults"
        plan = generate_plan(2, ["k0"], kinds=("store_torn",),
                             writes_expected=1)
        injector = install_plan(plan, root=root)
        assert probe("store.write") is not None
        records = injector.fired_events()
        assert len(records) == 1
        assert records[0]["event"]["kind"] == "store_torn"
        assert records[0]["pid"] == os.getpid()
        journal_files = list((root / "journal").glob("*.json"))
        assert len(journal_files) == 1


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.1)

    def test_delay_is_capped_exponential(self):
        policy = RetryPolicy(
            attempts=6, base_delay=0.1, multiplier=2.0, max_delay=0.5,
            jitter=0.0,
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)  # capped
        assert policy.delay(5) == pytest.approx(0.5)

    def test_jitter_bounds(self):
        import random

        policy = RetryPolicy(
            attempts=4, base_delay=0.1, multiplier=1.0, max_delay=1.0,
            jitter=0.5,
        )
        rng = random.Random(0)
        for _ in range(50):
            delay = policy.delay(1, rng=rng)
            assert 0.1 <= delay <= 0.15

    def test_call_retries_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "done"

        policy = RetryPolicy(attempts=4, base_delay=0.0, max_delay=0.0)
        result = policy.call(flaky, retry_on=(OSError,), sleep=lambda _: None)
        assert result == "done" and len(attempts) == 3

    def test_call_exhausts_and_reraises(self):
        def always_fails():
            raise OSError("persistent")

        policy = RetryPolicy(attempts=3, base_delay=0.0, max_delay=0.0)
        with pytest.raises(OSError, match="persistent"):
            policy.call(
                always_fails, retry_on=(OSError,), sleep=lambda _: None
            )


class TestStoreHardening:
    def _event_plan(self, *events):
        return FaultPlan(events=tuple(events), seed=0)

    def test_enospc_is_retried_and_counted(self, tmp_path):
        install_plan(self._event_plan(
            FaultEvent("e0", "store_enospc", "store.write", at=0)
        ))
        store = ResultStore(tmp_path / "store")
        result = SerialRunner(store=store).run(GRID[:1])
        assert store.write_retries >= 1
        assert store.stats()["entries"] == 1  # retry landed the write
        warm = SerialRunner(store=store).run(GRID[:1])
        assert warm.records[0].result.to_dict() == (
            result.records[0].result.to_dict()
        )

    def test_torn_write_heals_on_next_read(self, tmp_path):
        install_plan(self._event_plan(
            FaultEvent("e0", "store_torn", "store.write", at=0, param=0.3)
        ))
        store = ResultStore(tmp_path / "store")
        baseline = SerialRunner().run(GRID[:1])
        SerialRunner(store=store).run(GRID[:1])
        # The torn entry reads as corrupt -> miss -> recompute -> rewrite.
        healed = SerialRunner(store=store).run(GRID[:1])
        assert healed.records[0].result.to_dict() == (
            baseline.records[0].result.to_dict()
        )
        assert store.get(GRID[0]) is not None

    def test_sqlite_busy_is_transient_not_corruption(self, tmp_path):
        store = ResultStore(tmp_path / "store.db")
        assert store.backend == "sqlite"
        first = SerialRunner(store=store).run(GRID[:1])
        install_plan(self._event_plan(
            FaultEvent("e0", "sqlite_busy", "store.write", at=0)
        ))
        SerialRunner(store=store).run(GRID[1:2])
        # The BUSY error must not have nuked the database: the first
        # entry survives and both specs are now cached.
        assert store.get(GRID[0]) is not None
        assert store.get(GRID[1]) is not None
        assert store.write_retries >= 1
        warm = SerialRunner(store=store).run(GRID[:1])
        assert warm.records[0].result.to_dict() == (
            first.records[0].result.to_dict()
        )


class TestRunnerCrashRecovery:
    def test_worker_crash_recovers_bit_identically(self, tmp_path):
        baseline = SerialRunner().run(GRID)
        install_plan(
            generate_plan(
                4,
                [spec_fault_key(spec) for spec in GRID],
                kinds=("worker_crash",),
            ),
            root=tmp_path / "faults",
        )
        try:
            with pytest.warns(RuntimeWarning, match="process pool broke"):
                recovered = ParallelRunner(jobs=2).run(GRID)
        finally:
            uninstall_plan()
        assert len(recovered.records) == len(GRID)
        for got, want in zip(recovered.records, baseline.records):
            assert got.spec == want.spec
            assert got.result.to_dict() == want.result.to_dict()

    def test_chaos_report_shape(self, tmp_path):
        from repro.faults.chaos import ChaosReport

        report = ChaosReport(seed=0, root=str(tmp_path))
        assert not report.ok  # zero rounds is not a pass
        report.rounds = 1
        assert report.ok
        report.unfired.append("e0")
        assert not report.ok
        data = json.loads(json.dumps(report.to_dict()))
        assert data["ok"] is False and data["seed"] == 0
