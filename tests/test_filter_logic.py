"""Tests for the filter logic (Figure 7): clean checks, redundant updates,
masks and multi-shot chaining."""

from hypothesis import given, settings, strategies as st

from repro.fade.event_table import EventTableEntry, OperandRule, RuKind
from repro.fade.filter_logic import FilterLogic, OperandMetadata
from repro.fade.inv_rf import InvariantRegisterFile


def make_logic(invariants=(0, 1, 2, 3)):
    inv_rf = InvariantRegisterFile()
    inv_rf.load(invariants)
    return FilterLogic(inv_rf)


def operand(mem=False, mask=0xFF, inv_id=0):
    return OperandRule(valid=True, mem=mem, mask=mask, inv_id=inv_id)


class TestCleanCheck:
    def test_single_operand_match(self):
        logic = make_logic(invariants=(7,))
        entry = EventTableEntry(s1=operand(inv_id=0), cc=True)
        assert logic.evaluate(entry, OperandMetadata(s1=7))
        assert not logic.evaluate(entry, OperandMetadata(s1=6))

    def test_all_valid_operands_must_match(self):
        logic = make_logic(invariants=(1, 1, 1))
        entry = EventTableEntry(
            s1=operand(inv_id=0), s2=operand(inv_id=1), d=operand(inv_id=2), cc=True
        )
        assert logic.evaluate(entry, OperandMetadata(s1=1, s2=1, d=1))
        assert not logic.evaluate(entry, OperandMetadata(s1=1, s2=0, d=1))

    def test_per_operand_invariants_differ(self):
        logic = make_logic(invariants=(3, 5))
        entry = EventTableEntry(s1=operand(inv_id=0), d=operand(inv_id=1), cc=True)
        assert logic.evaluate(entry, OperandMetadata(s1=3, d=5))
        assert not logic.evaluate(entry, OperandMetadata(s1=5, d=3))

    def test_mask_limits_comparison(self):
        logic = make_logic(invariants=(0x83,))
        entry = EventTableEntry(s1=operand(mask=0x83, inv_id=0), cc=True)
        # Bits outside the mask (0x04) are ignored.
        assert logic.evaluate(entry, OperandMetadata(s1=0x87))
        assert not logic.evaluate(entry, OperandMetadata(s1=0x82))

    def test_missing_programmed_operand_fails_closed(self):
        """A valid-programmed operand missing at run time is unfilterable —
        the hardware never guesses."""
        logic = make_logic()
        entry = EventTableEntry(s1=operand(inv_id=0), cc=True)
        assert not logic.evaluate(entry, OperandMetadata(s1=None))

    def test_invalid_operands_are_ignored(self):
        logic = make_logic(invariants=(9,))
        entry = EventTableEntry(s1=operand(inv_id=0), cc=True)
        # s2/d carry garbage but are not valid in the entry.
        assert logic.evaluate(entry, OperandMetadata(s1=9, s2=1, d=2))


class TestRedundantUpdate:
    def test_direct_compare(self):
        logic = make_logic()
        entry = EventTableEntry(s1=operand(), d=operand(), ru=RuKind.DIRECT)
        assert logic.evaluate(entry, OperandMetadata(s1=4, d=4))
        assert not logic.evaluate(entry, OperandMetadata(s1=4, d=5))

    def test_or_compose(self):
        logic = make_logic()
        entry = EventTableEntry(
            s1=operand(), s2=operand(), d=operand(), ru=RuKind.OR
        )
        assert logic.evaluate(entry, OperandMetadata(s1=0b01, s2=0b10, d=0b11))
        assert not logic.evaluate(entry, OperandMetadata(s1=0b01, s2=0b10, d=0b01))

    def test_and_compose(self):
        logic = make_logic()
        entry = EventTableEntry(
            s1=operand(), s2=operand(), d=operand(), ru=RuKind.AND
        )
        assert logic.evaluate(entry, OperandMetadata(s1=0b11, s2=0b01, d=0b01))
        assert not logic.evaluate(entry, OperandMetadata(s1=0b11, s2=0b11, d=0b01))

    def test_single_source_or(self):
        """A missing source is the identity for the composition."""
        logic = make_logic()
        entry = EventTableEntry(s1=operand(), d=operand(), ru=RuKind.OR)
        assert logic.evaluate(entry, OperandMetadata(s1=2, d=2))

    def test_missing_dest_fails(self):
        logic = make_logic()
        entry = EventTableEntry(s1=operand(), d=operand(), ru=RuKind.DIRECT)
        assert not logic.evaluate(entry, OperandMetadata(s1=2, d=None))

    @given(
        st.integers(0, 255), st.integers(0, 255), st.integers(0, 255),
        st.sampled_from([RuKind.OR, RuKind.AND]),
    )
    @settings(max_examples=100, deadline=None)
    def test_compose_semantics(self, s1, s2, d, kind):
        """Property: the RU outcome is exactly (s1 op s2) == d."""
        logic = make_logic()
        entry = EventTableEntry(
            s1=operand(), s2=operand(), d=operand(), ru=kind
        )
        expected = (s1 | s2 if kind is RuKind.OR else s1 & s2) == d
        assert logic.evaluate(entry, OperandMetadata(s1=s1, s2=s2, d=d)) == expected


class TestChaining:
    def test_previous_outcome_is_anded(self):
        logic = make_logic(invariants=(1,))
        entry = EventTableEntry(s1=operand(inv_id=0), cc=True)
        metadata = OperandMetadata(s1=1)
        assert logic.evaluate(entry, metadata, previous_outcome=True)
        assert not logic.evaluate(entry, metadata, previous_outcome=False)

    def test_checkless_entry_passes_through(self):
        logic = make_logic()
        entry = EventTableEntry()  # PC-holder row: no check.
        assert logic.evaluate(entry, OperandMetadata(), previous_outcome=True)
        assert not logic.evaluate(entry, OperandMetadata(), previous_outcome=False)

    def test_comparison_counter_advances(self):
        logic = make_logic(invariants=(1,))
        entry = EventTableEntry(s1=operand(inv_id=0), cc=True)
        logic.evaluate(entry, OperandMetadata(s1=1))
        assert logic.comparisons == 1
