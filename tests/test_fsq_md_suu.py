"""Tests for the FSQ, the MD cache + M-TLB, and the Stack-Update Unit."""

import pytest

from repro.common.errors import ConfigurationError
from repro.fade.fsq import FilterStoreQueue
from repro.fade.inv_rf import InvariantRegisterFile
from repro.fade.md_cache import MetadataCache, MetadataCacheConfig
from repro.fade.suu import StackUpdateUnit
from repro.isa.events import StackOp, StackUpdate
from repro.metadata import ShadowMemory


class TestFilterStoreQueue:
    def test_lookup_returns_newest(self):
        fsq = FilterStoreQueue(capacity=4)
        fsq.insert(0x100, 1, owner_sequence=10)
        fsq.insert(0x100, 2, owner_sequence=11)
        assert fsq.lookup(0x100) == 2

    def test_lookup_miss(self):
        fsq = FilterStoreQueue()
        assert fsq.lookup(0x500) is None

    def test_release_discards_owned_entries(self):
        fsq = FilterStoreQueue()
        fsq.insert(0x100, 1, owner_sequence=10)
        fsq.insert(0x200, 2, owner_sequence=11)
        assert fsq.release(10) == 1
        assert fsq.lookup(0x100) is None
        assert fsq.lookup(0x200) == 2

    def test_capacity(self):
        fsq = FilterStoreQueue(capacity=2)
        fsq.insert(1, 1, 1)
        fsq.insert(2, 2, 2)
        assert fsq.is_full
        with pytest.raises(ConfigurationError):
            fsq.insert(3, 3, 3)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            FilterStoreQueue(capacity=0)

    def test_hit_statistics(self):
        fsq = FilterStoreQueue()
        fsq.insert(0x100, 1, 1)
        fsq.lookup(0x100)
        fsq.lookup(0x999)
        assert fsq.hits == 1
        assert fsq.max_occupancy == 1


class TestMetadataCache:
    def test_metadata_address_is_word_index(self):
        assert MetadataCache.metadata_address(0x1000) == 0x400

    def test_hit_and_miss_latency(self):
        cache = MetadataCache()
        first = cache.access(0x1000)
        assert not first.hit
        assert first.cycles == cache.config.miss_latency
        second = cache.access(0x1000)
        assert second.hit
        assert second.cycles == cache.config.hit_latency

    def test_one_block_covers_256_app_bytes(self):
        """64 B of metadata = 256 B of application data (1 byte per word)."""
        cache = MetadataCache()
        cache.access(0x1000)
        assert cache.access(0x10FC).hit  # Same 256 B app span.
        assert not cache.access(0x1100).hit

    def test_mtlb_reach_is_16kb_per_entry(self):
        cache = MetadataCache()
        first = cache.access(0x4000)
        assert first.tlb_miss
        # Anywhere within the same 16 KB app region translates.
        assert not cache.access(0x4000 + 16 * 1024 - 4).tlb_miss
        assert cache.access(0x4000 + 16 * 1024).tlb_miss

    def test_bulk_touch_counts_blocks(self):
        cache = MetadataCache()
        # 1024 app bytes = 256 metadata bytes = 4 blocks of 64.
        assert cache.bulk_touch(0x2000, 1024) == 4
        assert cache.bulk_touch(0x2000, 1) == 1

    def test_flush(self):
        cache = MetadataCache()
        cache.access(0x1000)
        cache.flush()
        assert not cache.access(0x1000).hit

    def test_section6_defaults(self):
        config = MetadataCacheConfig()
        assert config.size_bytes == 4 * 1024
        assert config.associativity == 2
        assert config.hit_latency == 1
        assert config.tlb_entries == 16


class TestStackUpdateUnit:
    def make_suu(self, call_value=0x01, return_value=0x00):
        inv_rf = InvariantRegisterFile()
        inv_rf.load([call_value, return_value])
        suu = StackUpdateUnit(
            inv_rf=inv_rf,
            md_cache=MetadataCache(),
            call_inv_id=0,
            return_inv_id=1,
        )
        return suu

    def test_call_fills_with_call_invariant(self):
        suu = self.make_suu(call_value=0x01)
        metadata = ShadowMemory(default=0)
        suu.process(StackUpdate(StackOp.CALL, frame_base=0x7000, frame_size=64), metadata)
        for offset in range(0, 64, 4):
            assert metadata.read(0x7000 + offset) == 0x01

    def test_return_fills_with_return_invariant(self):
        suu = self.make_suu(call_value=0x01, return_value=0x00)
        metadata = ShadowMemory(default=0xFF)
        suu.process(StackUpdate(StackOp.CALL, 0x7000, 32), metadata)
        suu.process(StackUpdate(StackOp.RETURN, 0x7000, 32), metadata)
        assert metadata.read(0x7000) == 0x00

    def test_cycles_scale_with_blocks(self):
        suu = self.make_suu()
        metadata = ShadowMemory()
        small = suu.process(StackUpdate(StackOp.CALL, 0x8000, 64), metadata)
        large = suu.process(StackUpdate(StackOp.CALL, 0x10000, 4096), metadata)
        assert small >= StackUpdateUnit.SETUP_CYCLES + 1
        assert large > small

    def test_statistics(self):
        suu = self.make_suu()
        metadata = ShadowMemory()
        suu.process(StackUpdate(StackOp.CALL, 0x8000, 64), metadata)
        assert suu.stats.updates == 1
        assert suu.stats.words_written == 16
        assert suu.stats.busy_cycles > 0
