"""Tests for repro.isa: op classes, instructions, event records."""

import pytest

from repro.isa import (
    Instruction,
    MonitoredEvent,
    OpClass,
    Operand,
    OperandKind,
    StackOp,
    StackUpdate,
    event_id_for,
)
from repro.isa.opcodes import MAX_EVENT_ID, known_event_ids


class TestOpClass:
    def test_memory_classes(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.ALU.is_memory

    def test_stack_classes(self):
        assert OpClass.CALL.is_stack_op
        assert OpClass.RETURN.is_stack_op
        assert not OpClass.LOAD.is_stack_op


class TestEventIds:
    def test_ids_are_unique(self):
        ids = list(known_event_ids().values())
        assert len(ids) == len(set(ids))

    def test_ids_fit_the_field(self):
        assert all(0 < event_id <= MAX_EVENT_ID for event_id in known_event_ids().values())

    def test_unknown_shape_raises(self):
        with pytest.raises(KeyError):
            event_id_for(OpClass.LOAD, 2)

    def test_alu_shapes_are_distinct(self):
        assert event_id_for(OpClass.ALU, 1) != event_id_for(OpClass.ALU, 2)


class TestInstruction:
    def test_at_most_two_sources(self):
        with pytest.raises(ValueError):
            Instruction(
                pc=0,
                op_class=OpClass.ALU,
                sources=(
                    Operand.register(1),
                    Operand.register(2),
                    Operand.register(3),
                ),
            )

    def test_memory_address_of_load(self):
        load = Instruction(
            pc=0,
            op_class=OpClass.LOAD,
            sources=(Operand.memory(0x1000),),
            dest=Operand.register(3),
        )
        assert load.memory_address == 0x1000
        assert load.is_load and not load.is_store

    def test_memory_address_of_store(self):
        store = Instruction(
            pc=0,
            op_class=OpClass.STORE,
            sources=(Operand.register(3),),
            dest=Operand.memory(0x2000),
        )
        assert store.memory_address == 0x2000

    def test_alu_has_no_memory_address(self):
        alu = Instruction(
            pc=0,
            op_class=OpClass.ALU,
            sources=(Operand.register(1),),
            dest=Operand.register(2),
        )
        assert alu.memory_address is None

    def test_event_id_matches_shape(self):
        load = Instruction(
            pc=0,
            op_class=OpClass.LOAD,
            sources=(Operand.memory(4),),
            dest=Operand.register(1),
        )
        assert load.event_id == event_id_for(OpClass.LOAD, 1)


class TestMonitoredEvent:
    def test_from_load_instruction(self):
        load = Instruction(
            pc=0x400,
            op_class=OpClass.LOAD,
            sources=(Operand.memory(0x1000),),
            dest=Operand.register(7),
        )
        event = MonitoredEvent.from_instruction(load, sequence=42)
        assert event.app_pc == 0x400
        assert event.app_addr == 0x1000
        assert event.src1_reg is None  # s1 is the memory operand.
        assert event.dest_reg == 7
        assert event.sequence == 42
        assert not event.is_stack_update

    def test_from_store_instruction(self):
        store = Instruction(
            pc=0x404,
            op_class=OpClass.STORE,
            sources=(Operand.register(5),),
            dest=Operand.memory(0x2000),
        )
        event = MonitoredEvent.from_instruction(store)
        assert event.src1_reg == 5
        assert event.dest_reg is None
        assert event.app_addr == 0x2000

    def test_from_call_instruction(self):
        call = Instruction(
            pc=0x408,
            op_class=OpClass.CALL,
            frame_base=0x7FFE_0000,
            frame_size=128,
        )
        event = MonitoredEvent.from_instruction(call)
        assert event.is_stack_update
        assert event.stack_update.op is StackOp.CALL
        assert event.stack_update.frame_base == 0x7FFE_0000
        assert event.stack_update.frame_size == 128

    def test_from_return_instruction(self):
        ret = Instruction(
            pc=0x40C, op_class=OpClass.RETURN, frame_base=0x7FFE_0000, frame_size=64
        )
        event = MonitoredEvent.from_instruction(ret)
        assert event.stack_update.op is StackOp.RETURN

    def test_two_source_alu(self):
        alu = Instruction(
            pc=0,
            op_class=OpClass.ALU,
            sources=(Operand.register(1), Operand.register(2)),
            dest=Operand.register(3),
        )
        event = MonitoredEvent.from_instruction(alu)
        assert (event.src1_reg, event.src2_reg, event.dest_reg) == (1, 2, 3)


class TestStackUpdate:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            StackUpdate(op=StackOp.CALL, frame_base=0, frame_size=-4)
