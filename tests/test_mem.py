"""Tests for repro.mem: caches, TLBs, the hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.mem import Cache, CacheConfig, MemoryHierarchy, Tlb
from repro.mem.hierarchy import HierarchyConfig


def small_cache(sets=4, ways=2, block=16):
    return Cache(
        CacheConfig(
            size_bytes=sets * ways * block,
            associativity=ways,
            block_bytes=block,
            latency=2,
            name="test",
        )
    )


class TestCacheConfig:
    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=96, associativity=2, block_bytes=16, latency=1)

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=100, associativity=3, block_bytes=16, latency=1)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=0, associativity=1, block_bytes=16, latency=1)

    def test_num_sets(self):
        config = CacheConfig(size_bytes=128, associativity=2, block_bytes=16, latency=1)
        assert config.num_sets == 4


class TestCache:
    def test_first_access_misses_then_hits(self):
        cache = small_cache()
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.access(0x10F)  # Same block.
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = small_cache(sets=1, ways=2, block=16)
        cache.access(0x00)  # A
        cache.access(0x10)  # B
        cache.access(0x00)  # Touch A: B is now LRU.
        cache.access(0x20)  # C evicts B.
        assert cache.probe(0x00)
        assert not cache.probe(0x10)
        assert cache.probe(0x20)
        assert cache.stats.evictions == 1

    def test_different_sets_do_not_conflict(self):
        cache = small_cache(sets=4, ways=1, block=16)
        for index in range(4):
            cache.access(index * 16)
        assert cache.resident_blocks() == 4

    def test_probe_does_not_change_state(self):
        cache = small_cache()
        cache.access(0x100)
        hits_before = cache.stats.hits
        cache.probe(0x100)
        cache.probe(0x999)
        assert cache.stats.hits == hits_before

    def test_invalidate(self):
        cache = small_cache()
        cache.access(0x100)
        assert cache.invalidate(0x100)
        assert not cache.probe(0x100)
        assert not cache.invalidate(0x100)

    def test_flush(self):
        cache = small_cache()
        cache.access(0x100)
        cache.flush()
        assert cache.resident_blocks() == 0

    def test_resident_never_exceeds_capacity(self):
        cache = small_cache(sets=2, ways=2, block=16)
        for address in range(0, 4096, 16):
            cache.access(address)
        assert cache.resident_blocks() <= 4

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_hit_rate_monotone_in_capacity(self, addresses):
        """A strictly larger fully-backwards-compatible cache (same sets,
        more ways) never hits less on the same trace (LRU inclusion)."""
        small = small_cache(sets=4, ways=1)
        large = small_cache(sets=4, ways=4)
        for address in addresses:
            small.access(address)
            large.access(address)
        assert large.stats.hits >= small.stats.hits


class TestTlb:
    def test_hit_after_fill(self):
        tlb = Tlb(entries=2, page_size=4096)
        assert not tlb.access(0x1000)
        assert tlb.access(0x1FFF)  # Same page.

    def test_lru_eviction(self):
        tlb = Tlb(entries=2, page_size=4096)
        tlb.access(0x0000)
        tlb.access(0x1000)
        tlb.access(0x0000)  # Page 0 is MRU.
        tlb.access(0x2000)  # Evicts page 1.
        assert tlb.access(0x0000)
        assert not tlb.access(0x1000)

    def test_rejects_bad_page_size(self):
        with pytest.raises(ConfigurationError):
            Tlb(entries=4, page_size=3000)

    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigurationError):
            Tlb(entries=0)

    def test_resident_bounded(self):
        tlb = Tlb(entries=3, page_size=4096)
        for page in range(10):
            tlb.access(page * 4096)
        assert tlb.resident_pages() == 3


class TestHierarchy:
    def test_latency_tiers(self):
        hierarchy = MemoryHierarchy()
        config = hierarchy.config
        cold = hierarchy.load_latency(0x1234)
        assert cold == config.l1.latency + config.l2.latency + config.dram_latency
        warm = hierarchy.load_latency(0x1234)
        assert warm == config.l1.latency

    def test_l2_hit_latency(self):
        hierarchy = MemoryHierarchy()
        config = hierarchy.config
        hierarchy.load_latency(0x1234)  # Fill both levels.
        # Evict from L1 by sweeping its capacity with conflicting blocks.
        for address in range(0x100000, 0x100000 + 2 * config.l1.size_bytes, 64):
            hierarchy.load_latency(address)
        latency = hierarchy.load_latency(0x1234)
        assert latency == config.l1.latency + config.l2.latency

    def test_flush(self):
        hierarchy = MemoryHierarchy()
        hierarchy.load_latency(0x40)
        hierarchy.flush()
        cold = hierarchy.load_latency(0x40)
        assert cold > hierarchy.config.l1.latency

    def test_table1_defaults(self):
        config = HierarchyConfig()
        assert config.l1.size_bytes == 32 * 1024
        assert config.l1.associativity == 2
        assert config.l2.size_bytes == 2 * 1024 * 1024
        assert config.l2.associativity == 16
        assert config.dram_latency == 90
