"""Functional tests for the five monitors: metadata semantics, handler
classification, stack updates, and cleanliness on generated traces."""

import pytest

from repro.fade.pipeline import HandlerKind
from repro.isa.events import MonitoredEvent, StackOp, StackUpdate
from repro.isa.instruction import Instruction, Operand
from repro.isa.opcodes import OpClass, event_id_for
from repro.monitors import MONITOR_NAMES, create_monitor
from repro.monitors.atomcheck import access_tag, READ, WRITE
from repro.monitors.base import HandlerClass
from repro.monitors.memcheck import DEFINED, INIT, UNALLOC, UNINIT
from repro.workload import generate_trace, get_profile
from repro.workload.trace import HighLevelEvent, HighLevelKind


def malloc(address, size, register=1, startup=False):
    return HighLevelEvent(
        kind=HighLevelKind.MALLOC, address=address, size=size, register=register,
        startup=startup,
    )


def free(address, size):
    return HighLevelEvent(kind=HighLevelKind.FREE, address=address, size=size)


def load_event(addr, dest, pc=0x100):
    return MonitoredEvent(
        event_id=event_id_for(OpClass.LOAD, 1), app_pc=pc, app_addr=addr, dest_reg=dest
    )


def store_event(addr, src, pc=0x104):
    return MonitoredEvent(
        event_id=event_id_for(OpClass.STORE, 1), app_pc=pc, app_addr=addr, src1_reg=src
    )


def replay(monitor, trace):
    """Functionally replay a whole trace through a monitor's software path."""
    for index, item in enumerate(trace):
        if isinstance(item, HighLevelEvent):
            monitor.handle_high_level(item)
            continue
        if not monitor.wants(item):
            continue
        event = MonitoredEvent.from_instruction(item, index)
        if event.is_stack_update:
            monitor.handle_stack_update(event.stack_update)
        else:
            monitor.handle_event(event)
    return monitor


class TestAddrCheck:
    def test_clean_access_is_noop(self):
        monitor = create_monitor("addrcheck")
        monitor.handle_high_level(malloc(0x1000, 64))
        result = monitor.handle_event(load_event(0x1000, dest=2))
        assert result.is_noop
        assert result.handler_class is HandlerClass.CLEAN_CHECK

    def test_access_after_free_reports(self):
        monitor = create_monitor("addrcheck")
        monitor.handle_high_level(malloc(0x1000, 64))
        monitor.handle_high_level(free(0x1000, 64))
        result = monitor.handle_event(load_event(0x1000, dest=2))
        assert result.report is not None
        assert monitor.reports

    def test_critical_metadata_track_allocation(self):
        monitor = create_monitor("addrcheck")
        monitor.handle_high_level(malloc(0x1000, 8))
        assert monitor.critical_mem.read(0x1000) == 0x01
        monitor.handle_high_level(free(0x1000, 8))
        assert monitor.critical_mem.read(0x1000) == 0x00

    def test_stack_update_allocates_frame(self):
        monitor = create_monitor("addrcheck")
        update = StackUpdate(StackOp.CALL, frame_base=0x7FF0_0000, frame_size=32)
        result = monitor.handle_stack_update(update)
        assert result.handler_class is HandlerClass.STACK_UPDATE
        assert monitor.handle_event(load_event(0x7FF0_0000, dest=1)).is_noop

    def test_lazy_region_materializes_without_report(self):
        from repro.monitors.addrcheck import LAZY_REGION_START

        monitor = create_monitor("addrcheck")
        result = monitor.handle_event(load_event(LAZY_REGION_START + 64, dest=1))
        assert result.report is None
        assert result.metadata_changed


class TestMemCheck:
    def test_load_of_uninitialised_reports(self):
        monitor = create_monitor("memcheck")
        monitor.handle_high_level(malloc(0x1000, 64))
        result = monitor.handle_event(load_event(0x1000, dest=2))
        assert result.report is not None

    def test_store_then_load_is_clean(self):
        monitor = create_monitor("memcheck")
        monitor.handle_high_level(malloc(0x1000, 64))
        first_store = monitor.handle_event(store_event(0x1000, src=3))
        assert first_store.metadata_changed  # UNINIT -> INIT.
        assert monitor.handle_event(load_event(0x1000, dest=2)).is_noop

    def test_second_store_is_clean_check(self):
        monitor = create_monitor("memcheck")
        monitor.handle_high_level(malloc(0x1000, 64))
        monitor.handle_event(store_event(0x1000, src=3))
        result = monitor.handle_event(store_event(0x1000, src=4))
        assert result.handler_class is HandlerClass.CLEAN_CHECK

    def test_stack_update_encodings(self):
        monitor = create_monitor("memcheck")
        update = StackUpdate(StackOp.CALL, 0x7FF0_0000, 16)
        monitor.handle_stack_update(update)
        assert monitor.critical_mem.read(0x7FF0_0000) == UNINIT
        monitor.handle_stack_update(StackUpdate(StackOp.RETURN, 0x7FF0_0000, 16))
        assert monitor.critical_mem.read(0x7FF0_0000) == UNALLOC

    def test_startup_malloc_is_initialised(self):
        monitor = create_monitor("memcheck")
        monitor.handle_high_level(malloc(0x4000, 16, startup=True))
        assert monitor.critical_mem.read(0x4000) == INIT

    def test_and_encoding_is_definedness_meet(self):
        assert INIT & UNINIT == UNINIT
        assert DEFINED & DEFINED == DEFINED


class TestTaintCheck:
    def make_tainted(self, monitor, address=0x2000):
        monitor.handle_high_level(malloc(address, 64))
        monitor.handle_high_level(
            HighLevelEvent(
                kind=HighLevelKind.TAINT_SOURCE, address=address, size=64
            )
        )

    def test_taint_propagates_through_load(self):
        monitor = create_monitor("taintcheck")
        self.make_tainted(monitor)
        result = monitor.handle_event(load_event(0x2000, dest=5))
        assert result.metadata_changed
        assert monitor.critical_regs.read(5) == 0x01

    def test_tainted_branch_reports(self):
        monitor = create_monitor("taintcheck")
        self.make_tainted(monitor)
        monitor.handle_event(load_event(0x2000, dest=5))
        branch = MonitoredEvent(
            event_id=event_id_for(OpClass.BRANCH, 1), app_pc=0x50, src1_reg=5
        )
        result = monitor.handle_event(branch)
        assert result.report is not None

    def test_untainted_branch_is_clean(self):
        monitor = create_monitor("taintcheck")
        branch = MonitoredEvent(
            event_id=event_id_for(OpClass.BRANCH, 1), app_pc=0x50, src1_reg=5
        )
        assert monitor.handle_event(branch).is_noop

    def test_retainting_is_redundant(self):
        monitor = create_monitor("taintcheck")
        self.make_tainted(monitor)
        monitor.handle_event(load_event(0x2000, dest=5))
        result = monitor.handle_event(load_event(0x2000, dest=5))
        assert result.handler_class is HandlerClass.REDUNDANT_UPDATE
        assert result.is_noop

    def test_stack_update_clears_taint(self):
        monitor = create_monitor("taintcheck")
        self.make_tainted(monitor, address=0x7FF0_0000)
        monitor.handle_stack_update(StackUpdate(StackOp.RETURN, 0x7FF0_0000, 64))
        assert monitor.critical_mem.read(0x7FF0_0000) == 0x00


class TestMemLeak:
    def test_malloc_creates_context_with_one_reference(self):
        monitor = create_monitor("memleak")
        monitor.handle_high_level(malloc(0x3000, 64, register=2))
        assert monitor.critical_regs.read(2) == 0x01
        (context,) = monitor.contexts.values()
        assert context.refcount == 1

    def test_store_of_pointer_adds_reference(self):
        monitor = create_monitor("memleak")
        monitor.handle_high_level(malloc(0x3000, 64, register=2))
        monitor.handle_event(store_event(0x4000, src=2))
        (context,) = monitor.contexts.values()
        assert context.refcount == 2
        assert monitor.critical_mem.read(0x4000) == 0x01

    def test_overwriting_last_reference_leaks(self):
        monitor = create_monitor("memleak")
        monitor.handle_high_level(malloc(0x3000, 64, register=2))
        # Clobber the only reference with a non-pointer.
        move = MonitoredEvent(
            event_id=event_id_for(OpClass.MOVE, 1), app_pc=0, src1_reg=9, dest_reg=2
        )
        monitor.handle_event(move)
        leaks = monitor.finalize()
        assert len(leaks) == 1

    def test_freed_allocation_does_not_leak(self):
        monitor = create_monitor("memleak")
        monitor.handle_high_level(malloc(0x3000, 64, register=2))
        monitor.handle_high_level(free(0x3000, 64))
        assert monitor.finalize() == []

    def test_non_pointer_event_is_clean(self):
        monitor = create_monitor("memleak")
        monitor.handle_high_level(malloc(0x3000, 64, register=2))
        alu = MonitoredEvent(
            event_id=event_id_for(OpClass.ALU, 2), app_pc=0,
            src1_reg=10, src2_reg=11, dest_reg=12,
        )
        assert monitor.handle_event(alu).is_noop


class TestAtomCheck:
    def setup_word(self, monitor, word=0x3000_0000):
        monitor.handle_high_level(malloc(word, 64))
        return word

    def switch(self, monitor, thread):
        monitor.handle_high_level(
            HighLevelEvent(kind=HighLevelKind.THREAD_SWITCH, thread=thread)
        )

    def test_same_thread_same_type_is_noop(self):
        monitor = create_monitor("atomcheck")
        word = self.setup_word(monitor)
        monitor.handle_event(load_event(word, dest=1))
        assert monitor.handle_event(load_event(word, dest=2)).is_noop

    def test_critical_tag_encoding(self):
        monitor = create_monitor("atomcheck")
        word = self.setup_word(monitor)
        self.switch(monitor, 2)
        monitor.handle_event(store_event(word, src=1))
        assert monitor.critical_mem.read(word) == access_tag(2, WRITE)

    def test_unserialisable_interleaving_reports(self):
        monitor = create_monitor("atomcheck")
        word = self.setup_word(monitor)
        self.switch(monitor, 0)
        monitor.handle_event(load_event(word, dest=1))  # T0 reads.
        self.switch(monitor, 1)
        monitor.handle_event(store_event(word, src=2))  # T1 writes between.
        self.switch(monitor, 0)
        result = monitor.handle_event(load_event(word, dest=3))  # T0 reads.
        assert result.report is not None

    def test_serialisable_interleaving_is_silent(self):
        monitor = create_monitor("atomcheck")
        word = self.setup_word(monitor)
        self.switch(monitor, 0)
        monitor.handle_event(store_event(word, src=1))  # T0 writes.
        self.switch(monitor, 1)
        monitor.handle_event(load_event(word, dest=2))  # T1 reads after: WRR ok.
        self.switch(monitor, 0)
        result = monitor.handle_event(load_event(word, dest=3))
        assert result.report is None

    def test_short_handler_kind_reduces_cost(self):
        monitor = create_monitor("atomcheck")
        word = self.setup_word(monitor)
        monitor.handle_event(load_event(word, dest=1))
        short = monitor.handle_event(store_event(word, src=1), HandlerKind.SHORT)
        assert short.cost == monitor.costs.partial_short

    def test_stack_accesses_not_monitored(self):
        monitor = create_monitor("atomcheck")
        stack_load = Instruction(
            pc=0, op_class=OpClass.LOAD,
            sources=(Operand.memory(0x7FFE_0000),), dest=Operand.register(1),
        )
        assert not monitor.wants(stack_load)

    def test_runtime_invariants_follow_thread(self):
        monitor = create_monitor("atomcheck")
        updates = monitor.runtime_invariant_updates(
            HighLevelEvent(kind=HighLevelKind.THREAD_SWITCH, thread=3)
        )
        assert (monitor.READ_TAG_INV, access_tag(3, READ)) in updates
        assert (monitor.WRITE_TAG_INV, access_tag(3, WRITE)) in updates


class TestCleanTraces:
    """Generated traces are clean: no monitor may raise a (non-leak) report."""

    @pytest.mark.parametrize("monitor_name", ["addrcheck", "memcheck", "taintcheck"])
    @pytest.mark.parametrize("bench", ["astar", "omnetpp", "gcc"])
    def test_sequential_monitors_stay_silent(self, monitor_name, bench):
        trace = generate_trace(get_profile(bench), 4000, seed=11)
        monitor = replay(create_monitor(monitor_name), trace)
        assert monitor.reports == []

    def test_memleak_reports_only_leaks(self):
        from repro.monitors.reports import BugKind

        trace = generate_trace(get_profile("astar"), 4000, seed=11)
        monitor = replay(create_monitor("memleak"), trace)
        assert all(r.kind is BugKind.MEMORY_LEAK for r in monitor.reports)
