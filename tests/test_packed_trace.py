"""Packed traces: lazy-view compatibility, column fast paths and
shared-memory transport all reproduce the object representation exactly.

The load-bearing guarantee is bit-identity: a :class:`PackedTrace` and an
object :class:`Trace` holding the same items must yield byte-for-byte equal
retire schedules, delivery plans and serialized :class:`RunResult`s across
monitors x topologies x engines.
"""

import functools
import pickle

import pytest

from repro.cores.base import CoreType
from repro.cores.retire import RetireModel
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.monitors import MONITOR_NAMES, create_monitor
from repro.monitors.memleak import MemLeak
from repro.system import SystemConfig, Topology, simulate
from repro.system.simulator import build_plan
from repro.workload import (
    PackedTrace,
    Trace,
    generate_trace,
    get_profile,
    pack_trace,
)
from repro.workload.trace import HighLevelEvent, HighLevelKind

from repro.api.shm import (
    SharedTraceArena,
    attach_trace,
    detach_all,
    shared_memory_available,
)


@functools.lru_cache(maxsize=None)
def packed(benchmark, n=1500, seed=11):
    trace = generate_trace(get_profile(benchmark), n, seed=seed)
    assert isinstance(trace, PackedTrace)
    return trace


@functools.lru_cache(maxsize=None)
def as_objects(benchmark, n=1500, seed=11):
    """The equivalent object trace, via the lazy item view."""
    source = packed(benchmark, n, seed)
    return Trace(list(source.items), name=source.name, seed=source.seed)


def bench_for(monitor_name):
    return "water" if monitor_name == "atomcheck" else "astar"


class TestLazyView:
    def test_view_equals_object_items(self):
        trace = packed("astar")
        objects = as_objects("astar")
        assert trace.items == objects.items
        assert objects.items == list(trace.items)

    def test_indexing_and_slicing(self):
        trace = packed("astar")
        objects = as_objects("astar")
        assert trace.items[0] == objects.items[0]
        assert trace.items[-1] == objects.items[-1]
        assert trace[5] == objects.items[5]
        assert trace.items[10:20] == objects.items[10:20]

    def test_materialisation_is_cached(self):
        trace = packed("astar")
        assert trace.items[3] is trace.items[3]

    def test_counts(self):
        trace = packed("gcc")
        objects = as_objects("gcc")
        assert len(trace) == len(objects.items)
        assert trace.num_instructions == objects.num_instructions == 1500
        half = len(trace) // 2
        assert trace.count_instructions(0, half) == objects.count_instructions(
            0, half
        )

    def test_iterators_match(self):
        trace = packed("water")
        objects = as_objects("water")
        assert list(trace.instructions()) == list(objects.instructions())
        assert list(trace.high_level_events()) == list(
            objects.high_level_events()
        )

    def test_jsonl_round_trip(self):
        trace = packed("astar", 300, 9)
        restored = Trace.from_jsonl(trace.to_jsonl())
        assert trace.items == restored.items
        assert restored.name == trace.name and restored.seed == trace.seed

    def test_concat_materialises(self):
        first = packed("astar", 100, 1)
        second = packed("astar", 100, 2)
        combined = first.concat(second)
        assert len(combined) == len(first) + len(second)

    def test_extend_rejected(self):
        with pytest.raises(TypeError, match="immutable"):
            packed("astar").extend([HighLevelEvent(HighLevelKind.FREE)])

    def test_pack_trace_round_trip(self):
        objects = as_objects("water")
        repacked = pack_trace(objects)
        assert repacked.items == objects.items
        assert repacked.name == objects.name and repacked.seed == objects.seed

    def test_compact_pickle_round_trip(self):
        trace = packed("astar")
        clone = pickle.loads(pickle.dumps(trace))
        assert isinstance(clone, PackedTrace)
        assert clone.items == trace.items
        assert clone.name == trace.name and clone.seed == trace.seed
        # The payload is one flat bytes blob (columns), not an object graph:
        # unpickling rebuilds views over it without reconstructing items.
        assert clone.column_bytes() == trace.column_bytes()


class TestColumnFastPaths:
    @pytest.mark.parametrize("core", [CoreType.INORDER, CoreType.OOO4])
    @pytest.mark.parametrize("bench", ["astar", "gcc", "water"])
    def test_schedule_bit_identical(self, bench, core):
        profile = get_profile(bench)
        model = RetireModel(
            core_type=core,
            bubble_prob=profile.bubble_prob,
            bubble_mean=profile.bubble_mean,
        )
        assert model.schedule(packed(bench)) == model.schedule(
            as_objects(bench)
        )

    @pytest.mark.parametrize("monitor_name", MONITOR_NAMES)
    def test_plan_bit_identical(self, monitor_name):
        benchmark = bench_for(monitor_name)
        fast = build_plan(packed(benchmark), create_monitor(monitor_name))
        generic = build_plan(as_objects(benchmark), create_monitor(monitor_name))
        assert fast.monitored == generic.monitored
        assert fast.stack_updates == generic.stack_updates
        assert fast.high_level == generic.high_level
        assert len(fast.items) == len(generic.items)
        for fast_item, generic_item in zip(fast.items, generic.items):
            if generic_item is None:
                assert fast_item is None
            else:
                assert fast_item.kind == generic_item.kind
                assert fast_item.payload == generic_item.payload
                assert fast_item.sequence == generic_item.sequence

    def test_custom_wants_uses_generic_path(self):
        class EveryOtherLoad(MemLeak):
            def wants(self, instruction):
                return (
                    instruction.op_class is OpClass.LOAD
                    and instruction.pc % 8 == 0
                )

        fast = build_plan(packed("astar"), EveryOtherLoad())
        generic = build_plan(as_objects("astar"), EveryOtherLoad())
        assert fast.monitored == generic.monitored > 0
        for fast_item, generic_item in zip(fast.items, generic.items):
            assert (fast_item is None) == (generic_item is None)
            if fast_item is not None:
                assert fast_item.payload == generic_item.payload


class TestSimulationBitIdentity:
    @pytest.mark.parametrize("engine", ["naive", "event"])
    @pytest.mark.parametrize(
        "topology", [Topology.SINGLE_CORE_SMT, Topology.TWO_CORE],
        ids=["smt", "two-core"],
    )
    @pytest.mark.parametrize("monitor_name", MONITOR_NAMES)
    def test_packed_vs_object_run_results(self, monitor_name, topology, engine):
        """Monitors x topologies x engines: the full serialized RunResult of
        a packed trace matches the object trace's bit for bit."""
        benchmark = bench_for(monitor_name)
        profile = get_profile(benchmark)
        config = SystemConfig(topology=topology, engine=engine)
        from_packed = simulate(
            packed(benchmark), create_monitor(monitor_name), config, profile
        )
        from_objects = simulate(
            as_objects(benchmark), create_monitor(monitor_name), config, profile
        )
        assert from_packed.to_dict() == from_objects.to_dict()

    def test_unaccelerated_matches_too(self):
        profile = get_profile("gcc")
        config = SystemConfig(fade_enabled=False)
        from_packed = simulate(
            packed("gcc"), create_monitor("memcheck"), config, profile
        )
        from_objects = simulate(
            as_objects("gcc"), create_monitor("memcheck"), config, profile
        )
        assert from_packed.to_dict() == from_objects.to_dict()


@pytest.mark.skipif(
    not shared_memory_available(), reason="no multiprocessing.shared_memory"
)
class TestSharedMemoryTransport:
    def test_share_attach_round_trip(self):
        trace = packed("astar")
        arena = SharedTraceArena()
        try:
            handle = arena.share(trace)
            assert handle is not None
            attached = attach_trace(handle)
            assert attached is not None
            assert list(attached.items) == list(trace.items)
            assert attached.name == trace.name and attached.seed == trace.seed
            # Attaching again reuses the per-process registry entry.
            assert attach_trace(handle) is attached
        finally:
            detach_all()
            arena.cleanup()

    def test_cleanup_unlinks_segments(self):
        trace = packed("astar", 200, 3)
        arena = SharedTraceArena()
        handle = arena.share(trace)
        assert handle is not None and len(arena) == 1
        arena.cleanup()
        assert len(arena) == 0
        assert attach_trace(handle) is None  # Segment is gone.
        arena.cleanup()  # Idempotent.

    def test_attach_unknown_segment_returns_none(self):
        from repro.api.shm import SharedTraceHandle

        meta, _ = packed("astar", 200, 3).to_payload()
        ghost = SharedTraceHandle("psm_repro_nonexistent", meta)
        assert attach_trace(ghost) is None
