"""Tests for the filtering pipeline: functional decisions, multi-shot,
partial filtering, Non-Blocking commits and FSQ forwarding."""

import pytest

from repro.common.errors import ProgrammingError
from repro.fade.event_table import EventTable, EventTableEntry, OperandRule, RuKind
from repro.fade.fsq import FilterStoreQueue
from repro.fade.inv_rf import InvariantRegisterFile
from repro.fade.md_cache import MetadataCache
from repro.fade.pipeline import FilteringPipeline, HandlerKind
from repro.fade.update_logic import NonBlockRule, UpdateSpec
from repro.isa.events import MonitoredEvent
from repro.metadata import ShadowMemory, ShadowRegisters


def mem_op(inv_id=0, mask=0xFF):
    return OperandRule(valid=True, mem=True, mask=mask, inv_id=inv_id)


def reg_op(inv_id=0, mask=0xFF):
    return OperandRule(valid=True, mem=False, mask=mask, inv_id=inv_id)


def make_pipeline(entries, invariants=(0, 1, 2, 3), non_blocking=True):
    table = EventTable()
    for index, entry in entries.items():
        table.program(index, entry)
    inv_rf = InvariantRegisterFile()
    inv_rf.load(invariants)
    md_regs = ShadowRegisters()
    md_mem = ShadowMemory()
    fsq = FilterStoreQueue() if non_blocking else None
    pipeline = FilteringPipeline(
        event_table=table,
        inv_rf=inv_rf,
        md_registers=md_regs,
        md_memory=md_mem,
        md_cache=MetadataCache(),
        fsq=fsq,
        non_blocking=non_blocking,
    )
    return pipeline, md_regs, md_mem, fsq


def load_event(addr=0x1000, dest=5, seq=0):
    return MonitoredEvent(event_id=1, app_pc=0, app_addr=addr, dest_reg=dest, sequence=seq)


class TestSingleShot:
    def test_clean_check_filters_matching_metadata(self):
        pipeline, _, md_mem, _ = make_pipeline(
            {1: EventTableEntry(s1=mem_op(inv_id=1), cc=True)}
        )
        md_mem.write(0x1000, 1)
        outcome = pipeline.process(load_event())
        assert outcome.filtered
        assert outcome.handler_kind is HandlerKind.NONE
        assert outcome.checks == 1

    def test_clean_check_rejects_mismatching_metadata(self):
        pipeline, _, md_mem, _ = make_pipeline(
            {1: EventTableEntry(s1=mem_op(inv_id=1), cc=True, handler_pc=0xAB)}
        )
        md_mem.write(0x1000, 0)
        outcome = pipeline.process(load_event())
        assert not outcome.filtered
        assert outcome.handler_kind is HandlerKind.FULL
        assert outcome.handler_pc == 0xAB

    def test_unprogrammed_event_goes_to_software(self):
        pipeline, _, _, _ = make_pipeline({})
        outcome = pipeline.process(load_event())
        assert not outcome.filtered
        assert outcome.handler_kind is HandlerKind.FULL

    def test_redundant_update_mem_to_reg(self):
        pipeline, md_regs, md_mem, _ = make_pipeline(
            {1: EventTableEntry(s1=mem_op(), d=reg_op(), ru=RuKind.DIRECT)}
        )
        md_mem.write(0x1000, 3)
        md_regs.write(5, 3)
        assert pipeline.process(load_event()).filtered
        md_regs.write(5, 4)
        assert not pipeline.process(load_event()).filtered


class TestMultiShot:
    def make_two_check_pipeline(self):
        return make_pipeline(
            {
                1: EventTableEntry(
                    s1=mem_op(inv_id=1), cc=True, ms=True, next_entry=64
                ),
                64: EventTableEntry(d=reg_op(inv_id=1), cc=True),
            },
            invariants=(0, 3),
        )

    def test_all_checks_must_pass(self):
        pipeline, md_regs, md_mem, _ = self.make_two_check_pipeline()
        md_mem.write(0x1000, 3)
        md_regs.write(5, 3)
        outcome = pipeline.process(load_event())
        assert outcome.filtered
        assert outcome.checks == 2

    def test_second_check_failing_unfilters(self):
        pipeline, md_regs, md_mem, _ = self.make_two_check_pipeline()
        md_mem.write(0x1000, 3)
        md_regs.write(5, 0)
        assert not pipeline.process(load_event()).filtered

    def test_multi_shot_occupies_more_cycles(self):
        pipeline, md_regs, md_mem, _ = self.make_two_check_pipeline()
        md_mem.write(0x1000, 3)
        md_regs.write(5, 3)
        pipeline.process(load_event())  # Warm the MD cache.
        outcome = pipeline.process(load_event())
        assert outcome.occupancy_cycles >= 2


class TestPartialFiltering:
    def make_partial_pipeline(self):
        # Full check: metadata == INV[1] (0x85); partial: thread bits only.
        return make_pipeline(
            {
                1: EventTableEntry(
                    d=mem_op(inv_id=1), cc=True, ms=True, next_entry=64,
                    handler_pc=0x100,
                ),
                64: EventTableEntry(
                    d=mem_op(inv_id=1, mask=0x83),
                    cc=True,
                    partial=True,
                    next_entry=65,
                    handler_pc=0x200,  # Long handler.
                ),
                65: EventTableEntry(handler_pc=0x300),  # Short-PC holder.
            },
            invariants=(0, 0x85),
        )

    def test_full_match_filters(self):
        pipeline, _, md_mem, _ = self.make_partial_pipeline()
        md_mem.write(0x1000, 0x85)
        assert pipeline.process(load_event()).filtered

    def test_partial_match_selects_short_handler(self):
        pipeline, _, md_mem, _ = self.make_partial_pipeline()
        md_mem.write(0x1000, 0x81)  # Same thread bits, different type bit.
        outcome = pipeline.process(load_event())
        assert not outcome.filtered
        assert outcome.handler_kind is HandlerKind.SHORT
        assert outcome.handler_pc == 0x300

    def test_partial_mismatch_selects_long_handler(self):
        pipeline, _, md_mem, _ = self.make_partial_pipeline()
        md_mem.write(0x1000, 0x82)  # Different thread bits.
        outcome = pipeline.process(load_event())
        assert not outcome.filtered
        assert outcome.handler_kind is HandlerKind.FULL
        assert outcome.handler_pc == 0x200

    def test_pure_partial_never_fully_filters(self):
        pipeline, _, md_mem, _ = make_pipeline(
            {
                1: EventTableEntry(
                    d=mem_op(inv_id=1), cc=True, partial=True, next_entry=65,
                    handler_pc=0x200,
                ),
                65: EventTableEntry(handler_pc=0x300),
            },
            invariants=(0, 0x85),
        )
        md_mem.write(0x1000, 0x85)
        outcome = pipeline.process(load_event())
        assert not outcome.filtered
        assert outcome.handler_kind is HandlerKind.SHORT

    def test_missing_short_pc_holder_raises(self):
        pipeline, _, md_mem, _ = make_pipeline(
            {
                1: EventTableEntry(
                    d=mem_op(inv_id=1), cc=True, partial=True, next_entry=99,
                    handler_pc=0x200,
                ),
            },
            invariants=(0, 0x85),
        )
        md_mem.write(0x1000, 0x85)
        with pytest.raises(ProgrammingError):
            pipeline.process(load_event())


class TestNonBlockingCommit:
    def test_register_update_committed(self):
        pipeline, md_regs, md_mem, _ = make_pipeline(
            {
                1: EventTableEntry(
                    s1=mem_op(inv_id=0), d=reg_op(inv_id=0), cc=True,
                    update=UpdateSpec(rule=NonBlockRule.PROP_S1),
                )
            }
        )
        md_mem.write(0x1000, 1)  # Pointer: CC against INV 0 fails.
        outcome = pipeline.process(load_event(dest=5))
        assert not outcome.filtered
        assert outcome.md_update == ("reg", 5, 1)
        assert md_regs.read(5) == 1

    def test_memory_update_goes_through_fsq(self):
        store_entry = EventTableEntry(
            s1=reg_op(inv_id=0), d=mem_op(inv_id=0), cc=True,
            update=UpdateSpec(rule=NonBlockRule.PROP_S1),
        )
        pipeline, md_regs, md_mem, fsq = make_pipeline({2: store_entry})
        md_regs.write(3, 1)  # Tainted/pointer source: CC fails.
        event = MonitoredEvent(
            event_id=2, app_pc=0, app_addr=0x2000, src1_reg=3, sequence=9
        )
        outcome = pipeline.process(event)
        assert outcome.md_update == ("mem", 0x2000, 1)
        assert fsq.lookup(0x2000) == 1
        assert md_mem.read(0x2000) == 1

    def test_filtered_event_commits_nothing(self):
        pipeline, md_regs, md_mem, fsq = make_pipeline(
            {
                1: EventTableEntry(
                    s1=mem_op(inv_id=0), d=reg_op(inv_id=0), cc=True,
                    update=UpdateSpec(rule=NonBlockRule.PROP_S1),
                )
            }
        )
        outcome = pipeline.process(load_event())
        assert outcome.filtered
        assert outcome.md_update is None
        assert len(fsq) == 0

    def test_blocking_mode_commits_nothing(self):
        pipeline, md_regs, md_mem, _ = make_pipeline(
            {
                1: EventTableEntry(
                    s1=mem_op(inv_id=0), d=reg_op(inv_id=0), cc=True,
                    update=UpdateSpec(rule=NonBlockRule.PROP_S1),
                )
            },
            non_blocking=False,
        )
        md_mem.write(0x1000, 1)
        outcome = pipeline.process(load_event())
        assert not outcome.filtered
        assert outcome.md_update is None
        assert md_regs.read(5) == 0

    def test_fsq_forwarding_beats_stale_memory(self):
        """A dependent read observes the FSQ value even if the backing
        shadow memory is stale (the Section 5.2 dependence case)."""
        entry = EventTableEntry(s1=mem_op(inv_id=0), cc=True)
        pipeline, _, md_mem, fsq = make_pipeline({1: entry})
        fsq.insert(0x1000, 1, owner_sequence=1)  # In-flight update: value 1.
        md_mem.write(0x1000, 0)  # Stale backing value would pass the check.
        outcome = pipeline.process(load_event())
        assert not outcome.filtered  # The forwarded value 1 fails the CC.


class TestTlbReporting:
    def test_first_access_reports_tlb_miss(self):
        pipeline, _, _, _ = make_pipeline(
            {1: EventTableEntry(s1=mem_op(inv_id=0), cc=True)}
        )
        assert pipeline.process(load_event()).tlb_miss
        assert not pipeline.process(load_event()).tlb_miss
