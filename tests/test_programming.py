"""Tests for the ProgramBuilder DSL and FadeProgram container."""

import pytest

from repro.common.errors import ProgrammingError
from repro.fade.event_table import EventTableEntry, RuKind
from repro.fade.programming import FIRST_CHAIN_ENTRY, FadeProgram, ProgramBuilder
from repro.fade.update_logic import NonBlockRule, UpdateSpec


class TestInvariants:
    def test_allocation_and_dedup(self):
        builder = ProgramBuilder("test")
        first = builder.invariant(3, "x")
        again = builder.invariant(3, "x")
        other = builder.invariant(3, "y")  # Same value, different meaning.
        assert first == again
        assert other != first

    def test_exhaustion(self):
        builder = ProgramBuilder("test")
        from repro.fade.inv_rf import INV_RF_SIZE

        for index in range(INV_RF_SIZE):
            builder.invariant(index, f"v{index}")
        with pytest.raises(ProgrammingError):
            builder.invariant(99, "overflow")

    def test_suu_values(self):
        builder = ProgramBuilder("test")
        builder.suu_values(call_value=0x01, return_value=0x00)
        program = builder.build()
        assert program.uses_suu
        assert program.inv_values[program.suu_call_inv_id] == 0x01
        assert program.inv_values[program.suu_return_inv_id] == 0x00

    def test_program_without_suu(self):
        program = ProgramBuilder("test").build()
        assert not program.uses_suu


class TestEntries:
    def test_clean_check_entry(self):
        builder = ProgramBuilder("test")
        inv = builder.invariant(1, "allocated")
        builder.clean_check(
            5, s1=builder.mem_operand(inv_id=inv), handler_pc=0x44
        )
        program = builder.build()
        entry = program.event_table.lookup(5)
        assert entry.cc and entry.s1.valid and entry.s1.mem
        assert entry.handler_pc == 0x44

    def test_redundant_update_entry(self):
        builder = ProgramBuilder("test")
        builder.redundant_update(
            6, ru=RuKind.OR, s1=builder.reg_operand(), s2=builder.reg_operand(),
            d=builder.reg_operand(),
        )
        entry = builder.build().event_table.lookup(6)
        assert entry.ru is RuKind.OR and not entry.cc

    def test_multi_shot_layout(self):
        builder = ProgramBuilder("test")
        builder.multi_shot(
            7,
            checks=[
                EventTableEntry(s1=builder.mem_operand(), cc=True),
                EventTableEntry(d=builder.reg_operand(), cc=True),
            ],
            handler_pc=0x88,
            update=UpdateSpec(rule=NonBlockRule.PROP_S1),
        )
        table = builder.build().event_table
        chain = table.chain(7)
        assert len(chain) == 2
        head_index, head = chain[0]
        assert head_index == 7
        assert head.ms and head.handler_pc == 0x88
        assert head.update.rule is NonBlockRule.PROP_S1
        tail_index, tail = chain[1]
        assert tail_index >= FIRST_CHAIN_ENTRY
        assert not tail.ms

    def test_multi_shot_requires_checks(self):
        builder = ProgramBuilder("test")
        with pytest.raises(ProgrammingError):
            builder.multi_shot(7, checks=[])

    def test_partial_filter_layout(self):
        builder = ProgramBuilder("test")
        builder.partial_filter(
            8,
            full_check=EventTableEntry(d=builder.mem_operand(), cc=True),
            partial_check=EventTableEntry(
                d=builder.mem_operand(mask=0x83), cc=True
            ),
            short_handler_pc=0x10,
            long_handler_pc=0x20,
        )
        table = builder.build().event_table
        chain = table.chain(8)
        assert len(chain) == 2
        partial_entry = chain[1][1]
        assert partial_entry.partial
        assert partial_entry.handler_pc == 0x20
        holder = table.lookup(partial_entry.next_entry)
        assert holder.handler_pc == 0x10

    def test_chain_region_exhaustion(self):
        builder = ProgramBuilder("test")
        from repro.fade.event_table import EVENT_TABLE_SIZE

        checks = [EventTableEntry(cc=True, s1=builder.reg_operand())] * 2
        with pytest.raises(ProgrammingError):
            for event_id in range(1, EVENT_TABLE_SIZE):
                builder.multi_shot(event_id % 60 + 1, checks=list(checks))


class TestFadeProgram:
    def test_make_inv_rf(self):
        builder = ProgramBuilder("test")
        builder.invariant(0x42, "magic")
        inv_rf = builder.build().make_inv_rf()
        assert inv_rf.read(0) == 0x42


class TestMonitorPrograms:
    """Every bundled monitor's program must be structurally valid."""

    @pytest.mark.parametrize(
        "monitor_name",
        ["addrcheck", "memcheck", "taintcheck", "memleak", "atomcheck"],
    )
    def test_programs_are_walkable_and_encodable(self, monitor_name):
        from repro.monitors import create_monitor

        program = create_monitor(monitor_name).fade_program()
        table = program.event_table
        assert len(table) > 0
        for index in table.programmed_indices():
            entry = table.lookup(index)
            # Round-trips through the 96-bit hardware encoding.
            assert EventTableEntry.decode(entry.encode()) == entry
            if entry.ms:
                table.chain(index)  # Raises on dangling/cyclic chains.

    def test_memleak_program_matches_figure6(self):
        """The MemLeak load rule is the paper's Figure 6(b) example: CC on
        (s1=mem, d=reg) against the non-pointer invariant."""
        from repro.isa.opcodes import OpClass, event_id_for
        from repro.monitors import create_monitor

        program = create_monitor("memleak").fade_program()
        entry = program.event_table.lookup(event_id_for(OpClass.LOAD, 1))
        assert entry.cc
        assert entry.s1.valid and entry.s1.mem
        assert entry.d.valid and not entry.d.mem
        assert program.inv_values[entry.s1.inv_id] == 0x00  # Non-pointer.
