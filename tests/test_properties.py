"""Property-based tests of the central correctness claim.

**Filter soundness**: whenever FADE filters an event, the software handler
it elided would have been a no-op — no metadata change, no bug report.  We
check this over randomly generated traces for every monitor by running the
filtering pipeline and the software handler side by side on every event.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fade import Fade, FadeConfig
from repro.isa.events import MonitoredEvent
from repro.isa.instruction import Instruction
from repro.monitors import MONITOR_NAMES, create_monitor
from repro.workload import generate_trace, get_profile
from repro.workload.trace import HighLevelEvent


def _drive(monitor_name, benchmark, seed, num_instructions=1200):
    """Run FADE and the software handlers in lockstep over a trace.

    Returns (filtered checked, violations) where a violation is a filtered
    event whose handler would *not* have been a no-op.
    """
    monitor = create_monitor(monitor_name)
    fade = Fade(
        monitor.fade_program(),
        monitor.critical_regs,
        monitor.critical_mem,
        FadeConfig(non_blocking=True),
    )
    trace = generate_trace(get_profile(benchmark), num_instructions, seed=seed)
    checked = 0
    violations = []
    for index, item in enumerate(trace):
        if isinstance(item, HighLevelEvent):
            for inv_id, value in monitor.runtime_invariant_updates(item):
                fade.write_invariant(inv_id, value)
            monitor.handle_high_level(item)
            continue
        if not monitor.wants(item):
            continue
        event = MonitoredEvent.from_instruction(item, index)
        if event.is_stack_update:
            if fade.suu is not None:
                fade.process_stack_update(event.stack_update)
                monitor.on_suu_stack_update(event.stack_update)
            else:
                monitor.handle_stack_update(event.stack_update)
            continue
        outcome = fade.process_event(event)
        # Run the handler regardless; for filtered events it must be a noop,
        # so running it cannot perturb state when the property holds.
        result = monitor.handle_event(event, outcome.handler_kind)
        fade.handler_completed(event.sequence)
        if outcome.filtered:
            checked += 1
            if not result.is_noop:
                violations.append((index, event, result))
    return checked, violations


SOUNDNESS_CASES = [
    ("addrcheck", "astar"),
    ("addrcheck", "omnetpp"),
    ("memcheck", "gcc"),
    ("memcheck", "astar"),
    ("taintcheck", "omnetpp"),
    ("taintcheck", "bzip"),
    ("memleak", "astar"),
    ("memleak", "omnetpp"),
    ("atomcheck", "water"),
    ("atomcheck", "streamcluster"),
]


@pytest.mark.parametrize("monitor_name,bench", SOUNDNESS_CASES)
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_filter_soundness(monitor_name, bench, seed):
    """Property: FADE never filters an event whose handler would have acted."""
    checked, violations = _drive(monitor_name, bench, seed)
    assert checked > 0, "trace produced no filtered events to check"
    assert not violations, (
        f"{len(violations)} unsound filters out of {checked}; "
        f"first: {violations[0]}"
    )


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=6, deadline=None)
def test_critical_metadata_converge_with_handlers(seed):
    """Property: after every handler completion the critical metadata match
    the authoritative state (the Non-Blocking hints never persist wrongly).

    Spot-checked via TaintCheck, whose authoritative state is a plain set.
    """
    monitor = create_monitor("taintcheck")
    fade = Fade(
        monitor.fade_program(), monitor.critical_regs, monitor.critical_mem
    )
    trace = generate_trace(get_profile("astar"), 800, seed=seed)
    for index, item in enumerate(trace):
        if isinstance(item, HighLevelEvent):
            monitor.handle_high_level(item)
            continue
        if not monitor.wants(item):
            continue
        event = MonitoredEvent.from_instruction(item, index)
        if event.is_stack_update:
            fade.process_stack_update(event.stack_update)
            monitor.on_suu_stack_update(event.stack_update)
            continue
        outcome = fade.process_event(event)
        if not outcome.filtered:
            monitor.handle_event(event, outcome.handler_kind)
            fade.handler_completed(event.sequence)
    # Authoritative taint state must equal the critical bytes.
    for word, value in monitor.critical_mem.items():
        assert (value == 0x01) == (word in monitor._tainted_words)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=200, max_value=1000),
)
@settings(max_examples=8, deadline=None)
def test_generator_determinism_property(seed, n):
    """Property: trace generation is a pure function of (profile, n, seed)."""
    first = generate_trace(get_profile("gobmk"), n, seed=seed)
    second = generate_trace(get_profile("gobmk"), n, seed=seed)
    assert first.items == second.items
