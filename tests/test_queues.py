"""Tests for repro.queues: bounded FIFOs with backpressure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError, QueueFullError
from repro.queues import BoundedQueue


class TestBoundedQueue:
    def test_fifo_order(self):
        queue = BoundedQueue(capacity=4)
        for value in (1, 2, 3):
            queue.enqueue(value)
        assert [queue.dequeue() for _ in range(3)] == [1, 2, 3]

    def test_capacity_enforced(self):
        queue = BoundedQueue(capacity=2)
        assert queue.try_enqueue("a")
        assert queue.try_enqueue("b")
        assert not queue.try_enqueue("c")
        assert queue.stats.rejected == 1
        with pytest.raises(QueueFullError):
            queue.enqueue("c")

    def test_unbounded_queue(self):
        queue = BoundedQueue(capacity=None)
        for value in range(10_000):
            queue.enqueue(value)
        assert not queue.is_full
        assert len(queue) == 10_000

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            BoundedQueue(capacity=0)

    def test_dequeue_empty_raises(self):
        with pytest.raises(IndexError):
            BoundedQueue(capacity=1).dequeue()

    def test_peek_does_not_remove(self):
        queue = BoundedQueue(capacity=2)
        queue.enqueue("x")
        assert queue.peek() == "x"
        assert len(queue) == 1

    def test_max_occupancy_tracking(self):
        queue = BoundedQueue(capacity=8)
        for value in range(5):
            queue.enqueue(value)
        for _ in range(3):
            queue.dequeue()
        assert queue.stats.max_occupancy == 5

    def test_occupancy_cdf(self):
        queue = BoundedQueue(capacity=4)
        queue.sample_occupancy()  # 0
        queue.enqueue(1)
        queue.sample_occupancy()  # 1
        queue.sample_occupancy()  # 1
        cdf = queue.stats.occupancy_cdf()
        assert cdf[0] == (0, pytest.approx(100.0 / 3))
        assert cdf[-1] == (1, pytest.approx(100.0))

    def test_clear_counts_as_dequeues(self):
        queue = BoundedQueue(capacity=4)
        queue.enqueue(1)
        queue.enqueue(2)
        queue.clear()
        assert queue.stats.dequeued == 2
        assert queue.is_empty

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 1000)),
            max_size=300,
        ),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_conservation_and_order(self, operations, capacity):
        """Property: no entry is lost or reordered, and occupancy never
        exceeds capacity (the backpressure invariant)."""
        queue = BoundedQueue(capacity=capacity)
        accepted = []
        drained = []
        for is_enqueue, value in operations:
            if is_enqueue:
                if queue.try_enqueue(value):
                    accepted.append(value)
            elif not queue.is_empty:
                drained.append(queue.dequeue())
            assert len(queue) <= capacity
        drained.extend(queue.dequeue() for _ in range(len(queue)))
        assert drained == accepted
        assert queue.stats.enqueued == queue.stats.dequeued
