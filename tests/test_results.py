"""Tests for RunResult derived metrics, FadeStats accounting, and the
JSON round-trip of a full result."""

import json
from collections import Counter

import pytest

from repro.fade.accelerator import Fade, FadeConfig, FadeStats
from repro.metadata import ShadowMemory, ShadowRegisters
from repro.monitors import create_monitor
from repro.monitors.base import HandlerClass
from repro.monitors.reports import BugKind, BugReport
from repro.queues.bounded import QueueStats
from repro.system.results import CycleBreakdown, RunResult


class TestFadeStats:
    def test_filtering_ratio(self):
        stats = FadeStats(instruction_events=200, filtered=150)
        assert stats.filtering_ratio == pytest.approx(0.75)

    def test_zero_events(self):
        assert FadeStats().filtering_ratio == 0.0

    def test_unfiltered_combines_partial_and_full(self):
        stats = FadeStats(partial_short=3, unfiltered_full=7)
        assert stats.unfiltered == 10


class TestCycleBreakdown:
    def test_percentages_sum_to_100(self):
        breakdown = CycleBreakdown(app_idle=25, monitor_idle=50, both_busy=25)
        shares = breakdown.percentages()
        assert sum(shares.values()) == pytest.approx(100.0)
        assert shares["monitor_idle"] == pytest.approx(50.0)

    def test_empty_breakdown_is_safe(self):
        assert sum(CycleBreakdown().percentages().values()) == 0.0


class TestRunResult:
    def make_result(self, **kwargs):
        defaults = dict(
            benchmark="astar", monitor="MemLeak", system="test",
            cycles=2000.0, baseline_cycles=1000.0, instructions=1500,
            monitored_events=600,
        )
        defaults.update(kwargs)
        return RunResult(**defaults)

    def test_slowdown(self):
        assert self.make_result().slowdown == pytest.approx(2.0)

    def test_slowdown_without_baseline_is_nan(self):
        import math

        assert math.isnan(self.make_result(baseline_cycles=0.0).slowdown)

    def test_ipcs(self):
        result = self.make_result()
        assert result.app_ipc == pytest.approx(1.5)
        assert result.monitored_ipc == pytest.approx(0.6)

    def test_handler_time_percentages(self):
        result = self.make_result()
        result.handler_instructions = {
            HandlerClass.CLEAN_CHECK: 75.0,
            HandlerClass.COMPLEX: 25.0,
        }
        shares = result.handler_time_percentages()
        assert shares["cc"] == pytest.approx(75.0)
        assert shares["complex"] == pytest.approx(25.0)

    def test_average_burst_size(self):
        result = self.make_result()
        result.unfiltered_burst_sizes = [2, 4, 6]
        assert result.average_burst_size == pytest.approx(4.0)
        assert self.make_result().average_burst_size == 0.0

    def test_summary_mentions_key_numbers(self):
        text = self.make_result().summary()
        assert "2.00x" in text and "astar" in text


class TestRunResultSerialization:
    def make_full_result(self) -> RunResult:
        """A result exercising every serialized field, including the nested
        FADE statistics, both queue stats, distances and bug reports."""
        return RunResult(
            benchmark="omnetpp",
            monitor="MemLeak",
            system="single-core/4-way OoO/non-blocking FADE",
            cycles=4321.5,
            baseline_cycles=2000.25,
            instructions=1800,
            monitored_events=700,
            stack_update_events=40,
            high_level_events=12,
            handler_instructions={
                HandlerClass.CLEAN_CHECK: 120.0,
                HandlerClass.REDUNDANT_UPDATE: 60.5,
                HandlerClass.COMPLEX: 30.0,
            },
            handlers_executed=95,
            fade_stats=FadeStats(
                instruction_events=700, filtered=600, partial_short=20,
                unfiltered_full=80, stack_updates=40, tlb_misses=3,
                md_updates_committed=77, busy_cycles=800, suu_cycles=90,
            ),
            event_queue_stats=QueueStats(
                enqueued=740, dequeued=740, rejected=5, max_occupancy=17,
                occupancy_histogram=Counter({0: 900, 3: 50, 17: 2}),
            ),
            work_queue_stats=QueueStats(enqueued=100, dequeued=100),
            unfiltered_distances=Counter({1: 30, 16: 7, 250: 1}),
            unfiltered_burst_sizes=[1, 4, 9],
            cycle_breakdown=CycleBreakdown(app_idle=10, monitor_idle=70, both_busy=20),
            app_blocked_cycles=11,
            monitor_busy_cycles=222,
            fade_drain_cycles=33,
            fade_wait_cycles=4,
            reports=[
                BugReport(
                    monitor="MemLeak", kind=BugKind.MEMORY_LEAK, pc=0x400,
                    address=0x8000_0000, thread=1, message="unreachable allocation",
                )
            ],
        )

    def test_round_trip_equality(self):
        original = self.make_full_result()
        restored = RunResult.from_dict(original.to_dict())
        assert restored == original
        # Derived metrics survive too.
        assert restored.slowdown == original.slowdown
        assert restored.filtering_ratio == original.filtering_ratio

    def test_round_trip_through_json_text(self):
        original = self.make_full_result()
        text = json.dumps(original.to_dict(), sort_keys=True)
        restored = RunResult.from_dict(json.loads(text))
        assert restored == original
        # Counter keys and enum keys come back with their native types.
        assert all(isinstance(k, int) for k in restored.unfiltered_distances)
        assert all(
            isinstance(k, HandlerClass) for k in restored.handler_instructions
        )
        assert restored.reports[0].kind is BugKind.MEMORY_LEAK

    def test_round_trip_of_minimal_result(self):
        original = RunResult(benchmark="astar", monitor="AddrCheck", system="t")
        restored = RunResult.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert restored == original
        assert restored.fade_stats is None
        assert restored.event_queue_stats is None

    def test_round_trip_of_simulated_result(self):
        from repro import quick_run

        original = quick_run(
            benchmark="astar", monitor="memleak", num_instructions=2000
        )
        restored = RunResult.from_dict(json.loads(json.dumps(original.to_dict())))
        assert restored == original


class TestFadeAccelerator:
    def test_stats_accumulate(self):
        monitor = create_monitor("memleak")
        fade = Fade(
            monitor.fade_program(), monitor.critical_regs, monitor.critical_mem
        )
        from repro.isa.events import MonitoredEvent
        from repro.isa.opcodes import OpClass, event_id_for

        clean = MonitoredEvent(
            event_id=event_id_for(OpClass.MOVE, 1), app_pc=0,
            src1_reg=10, dest_reg=11,
        )
        outcome = fade.process_event(clean)
        assert outcome.filtered
        assert fade.stats.instruction_events == 1
        assert fade.stats.filtered == 1

    def test_suu_unavailable_without_program_support(self):
        from repro.common.errors import ConfigurationError
        from repro.isa.events import StackOp, StackUpdate

        monitor = create_monitor("atomcheck")  # No SUU in its program.
        fade = Fade(
            monitor.fade_program(), monitor.critical_regs, monitor.critical_mem
        )
        with pytest.raises(ConfigurationError):
            fade.process_stack_update(StackUpdate(StackOp.CALL, 0x7000_0000, 64))

    def test_blocking_config_has_no_fsq(self):
        monitor = create_monitor("memleak")
        fade = Fade(
            monitor.fade_program(), monitor.critical_regs, monitor.critical_mem,
            FadeConfig(non_blocking=False),
        )
        assert fade.fsq is None
        assert not fade.fsq_full
        fade.handler_completed(0)  # No-op, must not raise.

    def test_write_invariant_reaches_pipeline(self):
        monitor = create_monitor("atomcheck")
        fade = Fade(
            monitor.fade_program(), monitor.critical_regs, monitor.critical_mem
        )
        fade.write_invariant(monitor.READ_TAG_INV, 0x83)
        assert fade.inv_rf.read(monitor.READ_TAG_INV) == 0x83
