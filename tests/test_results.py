"""Tests for RunResult derived metrics and FadeStats accounting."""

import pytest

from repro.fade.accelerator import Fade, FadeConfig, FadeStats
from repro.metadata import ShadowMemory, ShadowRegisters
from repro.monitors import create_monitor
from repro.monitors.base import HandlerClass
from repro.system.results import CycleBreakdown, RunResult


class TestFadeStats:
    def test_filtering_ratio(self):
        stats = FadeStats(instruction_events=200, filtered=150)
        assert stats.filtering_ratio == pytest.approx(0.75)

    def test_zero_events(self):
        assert FadeStats().filtering_ratio == 0.0

    def test_unfiltered_combines_partial_and_full(self):
        stats = FadeStats(partial_short=3, unfiltered_full=7)
        assert stats.unfiltered == 10


class TestCycleBreakdown:
    def test_percentages_sum_to_100(self):
        breakdown = CycleBreakdown(app_idle=25, monitor_idle=50, both_busy=25)
        shares = breakdown.percentages()
        assert sum(shares.values()) == pytest.approx(100.0)
        assert shares["monitor_idle"] == pytest.approx(50.0)

    def test_empty_breakdown_is_safe(self):
        assert sum(CycleBreakdown().percentages().values()) == 0.0


class TestRunResult:
    def make_result(self, **kwargs):
        defaults = dict(
            benchmark="astar", monitor="MemLeak", system="test",
            cycles=2000.0, baseline_cycles=1000.0, instructions=1500,
            monitored_events=600,
        )
        defaults.update(kwargs)
        return RunResult(**defaults)

    def test_slowdown(self):
        assert self.make_result().slowdown == pytest.approx(2.0)

    def test_slowdown_without_baseline_is_nan(self):
        import math

        assert math.isnan(self.make_result(baseline_cycles=0.0).slowdown)

    def test_ipcs(self):
        result = self.make_result()
        assert result.app_ipc == pytest.approx(1.5)
        assert result.monitored_ipc == pytest.approx(0.6)

    def test_handler_time_percentages(self):
        result = self.make_result()
        result.handler_instructions = {
            HandlerClass.CLEAN_CHECK: 75.0,
            HandlerClass.COMPLEX: 25.0,
        }
        shares = result.handler_time_percentages()
        assert shares["cc"] == pytest.approx(75.0)
        assert shares["complex"] == pytest.approx(25.0)

    def test_average_burst_size(self):
        result = self.make_result()
        result.unfiltered_burst_sizes = [2, 4, 6]
        assert result.average_burst_size == pytest.approx(4.0)
        assert self.make_result().average_burst_size == 0.0

    def test_summary_mentions_key_numbers(self):
        text = self.make_result().summary()
        assert "2.00x" in text and "astar" in text


class TestFadeAccelerator:
    def test_stats_accumulate(self):
        monitor = create_monitor("memleak")
        fade = Fade(
            monitor.fade_program(), monitor.critical_regs, monitor.critical_mem
        )
        from repro.isa.events import MonitoredEvent
        from repro.isa.opcodes import OpClass, event_id_for

        clean = MonitoredEvent(
            event_id=event_id_for(OpClass.MOVE, 1), app_pc=0,
            src1_reg=10, dest_reg=11,
        )
        outcome = fade.process_event(clean)
        assert outcome.filtered
        assert fade.stats.instruction_events == 1
        assert fade.stats.filtered == 1

    def test_suu_unavailable_without_program_support(self):
        from repro.common.errors import ConfigurationError
        from repro.isa.events import StackOp, StackUpdate

        monitor = create_monitor("atomcheck")  # No SUU in its program.
        fade = Fade(
            monitor.fade_program(), monitor.critical_regs, monitor.critical_mem
        )
        with pytest.raises(ConfigurationError):
            fade.process_stack_update(StackUpdate(StackOp.CALL, 0x7000_0000, 64))

    def test_blocking_config_has_no_fsq(self):
        monitor = create_monitor("memleak")
        fade = Fade(
            monitor.fade_program(), monitor.critical_regs, monitor.critical_mem,
            FadeConfig(non_blocking=False),
        )
        assert fade.fsq is None
        assert not fade.fsq_full
        fade.handler_completed(0)  # No-op, must not raise.

    def test_write_invariant_reaches_pipeline(self):
        monitor = create_monitor("atomcheck")
        fade = Fade(
            monitor.fade_program(), monitor.critical_regs, monitor.critical_mem
        )
        fade.write_invariant(monitor.READ_TAG_INV, 0x83)
        assert fade.inv_rf.read(monitor.READ_TAG_INV) == 0x83
