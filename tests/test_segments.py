"""Segmented execution: checkpointed trace segments with bit-identical
stat stitching (repro.api.segments), the segment-aware parallel scheduler,
and the pool-harvest error classification it leans on.
"""

import os
import pathlib
import time

import pytest

from repro.api import ExperimentSettings, RunSpec
from repro.api.cache import RunnerCache
from repro.api.runner import ParallelRunner, execute_spec, run_specs
from repro.api.segments import (
    open_segment_store,
    plan_boundaries,
    run_chain_to,
    run_segmented,
)
from repro.checkpoint import CheckpointStore
from repro.system.config import SystemConfig
from repro.verify.oracle import result_digest
from repro.workload.generator import generate_trace
from repro.workload.profiles import get_profile

SETTINGS = ExperimentSettings(num_instructions=2500, seed=9)
SPEC = RunSpec("astar", "addrcheck", SystemConfig(), SETTINGS)


@pytest.fixture()
def cache():
    return RunnerCache()


class TestBoundaries:
    def test_boundaries_fall_in_timed_range(self, cache):
        boundaries = plan_boundaries(SPEC, cache, 4)
        trace = cache.trace(SPEC.benchmark, SPEC.settings, None)
        warmup = int(len(trace.items) * SPEC.settings.warmup_fraction)
        assert len(boundaries) == 3
        assert all(warmup < b < len(trace.items) for b in boundaries)
        assert list(boundaries) == sorted(set(boundaries))

    def test_boundaries_nest_across_segment_counts(self, cache):
        # K=2's midpoint must be one of K=4's boundaries, so seams stored
        # by one segment count are reusable by the other.
        b2 = set(plan_boundaries(SPEC, cache, 2))
        b4 = set(plan_boundaries(SPEC, cache, 4))
        assert b2 <= b4

    def test_degenerate_counts(self, cache):
        assert plan_boundaries(SPEC, cache, 1) == ()
        assert plan_boundaries(SPEC, cache, 0) == ()


class TestSerialChain:
    def test_bit_identical_and_metadata(self, cache):
        mono = result_digest(execute_spec(SPEC, cache))
        result = run_segmented(SPEC, cache, segments=3)
        assert result_digest(result) == mono
        meta = result.segment_metadata
        assert meta["segments"] == 3
        assert meta["executed_segments"] == 3
        assert meta["resumed_from_boundary"] is None
        assert meta["per_segment"][-1]["final"]

    def test_seam_store_roundtrip_and_warm_resume(self, cache, tmp_path):
        mono = result_digest(execute_spec(SPEC, cache))
        store = CheckpointStore(tmp_path / "seams")
        try:
            cold = run_segmented(SPEC, cache, segments=4, segment_store=store)
            assert result_digest(cold) == mono
            stored = store.segment_boundaries_stored(SPEC)
            assert stored == sorted(plan_boundaries(SPEC, cache, 4))
            warm = run_segmented(SPEC, cache, segments=4, segment_store=store)
            assert result_digest(warm) == mono
            meta = warm.segment_metadata
            assert meta["resumed_from_boundary"] == stored[-1]
            assert meta["executed_segments"] == 1
        finally:
            store.close()

    def test_seams_survive_completion_sweep(self, cache, tmp_path):
        # complete() retires the plain mid-run checkpoint; seams are
        # reusable assets and must survive it (and gc).
        store = CheckpointStore(tmp_path / "seams")
        try:
            run_segmented(SPEC, cache, segments=3, segment_store=store)
            store.complete(SPEC)
            assert len(store.segment_boundaries_stored(SPEC)) == 2
            swept = store.gc()
            assert swept["removed_invalid"] == 0
            assert len(store.segment_boundaries_stored(SPEC)) == 2
        finally:
            store.close()

    def test_torn_seam_degrades_to_recompute(self, cache, tmp_path):
        mono = result_digest(execute_spec(SPEC, cache))
        store = CheckpointStore(tmp_path / "seams")
        try:
            run_segmented(SPEC, cache, segments=3, segment_store=store)
            last = store.segment_boundaries_stored(SPEC)[-1]
            key = store.segment_key(SPEC, last)
            payload = store._backend.read(key)
            store._backend.write(key, payload[: len(payload) // 2])
            result = run_segmented(SPEC, cache, segments=3, segment_store=store)
            assert result_digest(result) == mono
            # The invalid seam was resolved to the older one and rewritten.
            assert store.segment_boundaries_stored(SPEC)[-1] == last
        finally:
            store.close()

    def test_chain_to_heals_missing_intermediate_seams(self, cache, tmp_path):
        store = CheckpointStore(tmp_path / "seams")
        try:
            boundaries = list(plan_boundaries(SPEC, cache, 4))
            # Cold store: one task asked for the last boundary must chain
            # through — and store — every intervening seam.
            paused = run_chain_to(
                SPEC, cache, boundaries[:-1], boundaries[-1], store
            )
            assert paused is None
            assert store.segment_boundaries_stored(SPEC) == boundaries
            final = run_chain_to(SPEC, cache, boundaries, None, store)
            assert result_digest(final) == result_digest(
                execute_spec(SPEC, cache)
            )
        finally:
            store.close()


class TestParallelSegmented:
    def test_grid_bit_identical(self, cache):
        specs = [
            RunSpec("astar", "addrcheck", SystemConfig(), SETTINGS),
            RunSpec("mcf", "memleak", SystemConfig(), SETTINGS),
            RunSpec("astar", "taintcheck", SystemConfig(), SETTINGS),
        ]
        expected = [result_digest(execute_spec(s, cache)) for s in specs]
        runner = ParallelRunner(jobs=2, segments=3)
        results = runner.run(specs)
        assert [result_digest(r) for r in results.results] == expected

    def test_grid_reuses_stored_seams(self, cache, tmp_path):
        seam_dir = tmp_path / "seams"
        specs = [
            RunSpec("astar", "addrcheck", SystemConfig(), SETTINGS),
            RunSpec("mcf", "memleak", SystemConfig(), SETTINGS),
        ]
        expected = [result_digest(execute_spec(s, cache)) for s in specs]
        first = ParallelRunner(
            jobs=2, segments=3, segment_store=seam_dir
        ).run(specs)
        assert [result_digest(r) for r in first.results] == expected
        store = open_segment_store(seam_dir)
        for spec in specs:
            assert store.segment_boundaries_stored(spec) == sorted(
                plan_boundaries(spec, cache, 3)
            )
        second = ParallelRunner(
            jobs=2, segments=3, segment_store=seam_dir
        ).run(specs)
        assert [result_digest(r) for r in second.results] == expected

    def test_run_specs_segments_axis(self, cache):
        expected = result_digest(execute_spec(SPEC, cache))
        results = run_specs([SPEC], jobs=1, segments=2)
        assert result_digest(results.results[0]) == expected


# ----------------------------------------------------------------- harvest

def _chunk_raise_or_die(payload):
    """Pool-chunk stand-in (top-level so fork workers resolve it).

    Chunk order is the sorted benchmark order, so the parent blocks on the
    astar chunk's future first.  The mcf chunk fails deterministically
    right away; the astar chunk waits for that failure (and for its
    delivery to the parent) and then dies hard — so the parent sees
    BrokenProcessPool *before* it ever harvests the mcf future, which is
    exactly the window where the old harvest swallowed the real error.
    """
    specs, _handles = payload
    base = pathlib.Path(os.environ["REPRO_TEST_CHUNK_DIR"])
    if specs[0].benchmark == "mcf":
        with open(base / "attempts", "a") as handle:
            handle.write("x\n")
        (base / "marker").touch()
        raise ValueError("deterministic spec failure")
    deadline = time.time() + 30
    while not (base / "marker").exists() and time.time() < deadline:
        time.sleep(0.01)
    # Give the parent time to receive the mcf chunk's exception before the
    # pool breaks, so its future carries ValueError, not pool death.
    time.sleep(1.0)
    os._exit(1)


class TestPoolHarvestClassification:
    def test_pool_break_does_not_swallow_spec_error(
        self, monkeypatch, tmp_path
    ):
        """Regression: a deterministic per-spec failure harvested during
        pool breakage must fail fast with the original exception — the old
        harvest swallowed it, retried the doomed chunk, and the serial
        fallback then silently recomputed a 'successful' grid."""
        from repro.api import runner as runner_module

        monkeypatch.setattr(
            runner_module, "_worker_run_chunk", _chunk_raise_or_die
        )
        monkeypatch.setenv("REPRO_TEST_CHUNK_DIR", str(tmp_path))
        specs = [
            RunSpec("astar", "memleak", SystemConfig(), SETTINGS),
            RunSpec("mcf", "memleak", SystemConfig(), SETTINGS),
        ]
        runner = ParallelRunner(jobs=2)
        with pytest.raises(ValueError, match="deterministic spec failure"):
            runner.run(specs)
        attempts = (tmp_path / "attempts").read_text().count("x")
        assert attempts == 1
