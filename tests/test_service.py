"""The campaign service: declarative campaign expansion, single-flight
scheduling, and the server/client protocol end-to-end — every distinct spec
simulated exactly once across concurrent clients, results bit-identical to
SerialRunner.
"""

import asyncio
import json
import threading

import pytest

from repro import cli
from repro.api import (
    ExperimentSettings,
    ResultStore,
    SerialRunner,
    config_from_fields,
    spec_grid,
)
from repro.common.errors import ConfigurationError
from repro.service import (
    Campaign,
    CampaignServer,
    ServiceClient,
    ServiceError,
    SpecScheduler,
    expand_campaign,
)
from repro.system.config import CoreType, SystemConfig, Topology

TINY = ExperimentSettings(num_instructions=1500, seed=11)

GRID = spec_grid(
    ["astar", "mcf"],
    ["memleak", "addrcheck"],
    [SystemConfig()],
    TINY,
)


class TestConfigFromFields:
    def test_empty_is_default(self):
        assert config_from_fields({}) == SystemConfig()

    def test_aliases(self):
        config = config_from_fields(
            {"core_type": "inorder", "topology": "two-core"}
        )
        assert config.core_type is CoreType.INORDER
        assert config.topology is Topology.TWO_CORE

    def test_enum_values_accepted(self):
        config = config_from_fields({"core_type": CoreType.OOO2.value})
        assert config.core_type is CoreType.OOO2

    def test_plain_fields(self):
        config = config_from_fields(
            {"fade_enabled": False, "fsq_capacity": 32}
        )
        assert config.fade_enabled is False and config.fsq_capacity == 32

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="fade_enbaled"):
            config_from_fields({"fade_enbaled": True})

    def test_unknown_alias_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_fields({"core_type": "quantum"})


class TestCampaignExpansion:
    def test_grid_matches_spec_grid(self):
        specs = expand_campaign(
            {
                "settings": {"instructions": 1500, "seed": 11},
                "grid": {
                    "benchmarks": ["astar", "mcf"],
                    "monitors": ["memleak", "addrcheck"],
                    "configs": [{}],
                },
            }
        )
        assert [s.to_dict() for s in specs] == [s.to_dict() for s in GRID]

    def test_explicit_specs_inherit_settings(self):
        specs = expand_campaign(
            {
                "settings": {"instructions": 1500, "seed": 11},
                "specs": [{"benchmark": "gcc", "monitor": "memcheck"}],
            }
        )
        assert len(specs) == 1
        assert specs[0].settings == ExperimentSettings(
            num_instructions=1500, seed=11
        )

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="grids"):
            expand_campaign({"grids": {}})

    def test_empty_campaign_rejected(self):
        with pytest.raises(ConfigurationError, match="zero specs"):
            expand_campaign({"name": "empty"})

    def test_grid_needs_benchmarks_and_monitors(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            expand_campaign({"grid": {"benchmarks": ["astar"]}})

    def test_bad_settings_field(self):
        with pytest.raises(ConfigurationError, match="speed"):
            expand_campaign(
                {"settings": {"speed": 9}, "grid": {
                    "benchmarks": ["astar"], "monitors": ["memleak"]}}
            )

    def test_json_campaign_file_roundtrip(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(
            json.dumps(
                {
                    "name": "mini",
                    "settings": {"instructions": 1500, "seed": 11},
                    "grid": {
                        "benchmarks": ["astar"],
                        "monitors": ["memleak"],
                        "configs": [{}, {"fade_enabled": False}],
                    },
                }
            )
        )
        campaign = Campaign.load(path)
        assert campaign.name == "mini" and len(campaign.specs) == 2
        assert "mini" in campaign.describe()

    def test_campaign_run_in_process(self, tmp_path):
        campaign = Campaign(name="t", specs=list(GRID[:2]))
        results = campaign.run(store=ResultStore(tmp_path / "c"))
        reference = SerialRunner().run(GRID[:2])
        assert results.to_dict() == reference.to_dict()


class TestSpecScheduler:
    def run_async(self, coroutine):
        return asyncio.run(coroutine)

    def test_single_flight_dedup(self):
        scheduler = SpecScheduler(use_processes=False)

        async def main():
            outcomes = await asyncio.gather(
                *[scheduler.execute(GRID[0]) for _ in range(3)]
            )
            return outcomes

        outcomes = self.run_async(main())
        statuses = sorted(o.status for o in outcomes)
        assert statuses == ["coalesced", "coalesced", "computed"]
        digests = {
            json.dumps(o.result.to_dict(), sort_keys=True) for o in outcomes
        }
        assert len(digests) == 1  # All waiters got the same result object.
        assert scheduler.stats()["computed"] == 1
        scheduler.shutdown()

    def test_warm_from_store(self, tmp_path):
        store = ResultStore(tmp_path / "sched.db")
        scheduler = SpecScheduler(store=store, use_processes=False)

        async def main():
            first = await scheduler.execute(GRID[0])
            second = await scheduler.execute(GRID[0])
            return first, second

        first, second = self.run_async(main())
        assert first.status == "computed" and second.status == "warm"
        assert first.result.to_dict() == second.result.to_dict()
        scheduler.shutdown()

    def test_matches_serial_runner(self):
        scheduler = SpecScheduler(use_processes=False)

        async def main():
            return [await scheduler.execute(spec) for spec in GRID[:2]]

        outcomes = self.run_async(main())
        reference = SerialRunner().run(GRID[:2])
        for outcome, expected in zip(outcomes, reference.results):
            assert outcome.result.to_dict() == expected.to_dict()
        scheduler.shutdown()


@pytest.fixture
def server(tmp_path):
    """A background campaign server on a Unix socket with a SQLite store
    (thread scheduler: tests must not pay fork-pool startup)."""
    store = ResultStore(tmp_path / "server.db")
    instance = CampaignServer(
        store=store,
        socket_path=str(tmp_path / "server.sock"),
        scheduler=SpecScheduler(store=store, use_processes=False),
    )
    address = instance.start_background()
    yield instance, address
    instance.stop_background()


class TestServerEndToEnd:
    def test_health_and_stats(self, server):
        _, address = server
        client = ServiceClient(address)
        health = client.health()
        assert health["ok"] is True and health["service"] == "repro"
        stats = client.stats()
        assert stats["store"]["backend"] == "sqlite"
        assert stats["server"]["specs_received"] == 0

    def test_results_match_serial_runner(self, server):
        _, address = server
        results = ServiceClient(address).run_specs(GRID)
        reference = SerialRunner().run(GRID)
        assert json.dumps(results.to_dict(), sort_keys=True) == json.dumps(
            reference.to_dict(), sort_keys=True
        )

    def test_two_concurrent_clients_dedup(self, server):
        """The tentpole guarantee: two clients submitting the same batch
        concurrently — every distinct spec simulated exactly once."""
        instance, address = server
        outputs = {}

        def submit(name):
            outputs[name] = ServiceClient(address).run_specs(GRID)

        threads = [
            threading.Thread(target=submit, args=(name,))
            for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert json.dumps(
            outputs["a"].to_dict(), sort_keys=True
        ) == json.dumps(outputs["b"].to_dict(), sort_keys=True)
        stats = instance.scheduler.stats()
        assert stats["specs_received"] == 2 * len(GRID)
        assert stats["computed"] == len(GRID)  # Exactly once per spec.
        assert stats["warm_hits"] + stats["coalesced"] == len(GRID)

    def test_resubmission_is_all_warm(self, server):
        instance, address = server
        client = ServiceClient(address)
        client.run_specs(GRID[:2])
        events = list(client.submit(GRID[:2], results=False))
        statuses = [e["status"] for e in events if e["event"] == "spec"]
        assert statuses == ["warm", "warm"]
        assert all("result" not in e for e in events)  # results=False honoured
        done = [e for e in events if e["event"] == "done"]
        assert done and done[0]["statuses"] == {"warm": 2}

    def test_error_event_does_not_abort_batch(self, server):
        _, address = server
        client = ServiceClient(address)
        bad = GRID[0].to_dict()
        bad["monitor"] = "no-such-monitor"
        events = list(
            client.submit([GRID[0]])
        )  # Warm up the good spec first? No — mixed batch below.
        body = {"specs": [GRID[1].to_dict(), bad]}
        raw = json.dumps(body).encode()
        status, stream = client._request("POST", "/run", raw)
        assert status == 200
        with stream:
            events = [json.loads(line) for line in stream if line.strip()]
        spec_events = {e["index"]: e for e in events if e["event"] == "spec"}
        assert spec_events[0]["status"] in ("computed", "warm", "coalesced")
        assert spec_events[1]["status"] == "error"
        assert "no-such-monitor" in spec_events[1]["error"]
        done = [e for e in events if e["event"] == "done"][0]
        assert done["total"] == 2 and done["statuses"]["error"] == 1

    def test_run_specs_raises_on_error(self, server):
        _, address = server
        from repro.api import RunSpec

        bad = RunSpec.from_dict(
            {**GRID[0].to_dict(), "monitor": "no-such-monitor"}
        )
        with pytest.raises(ServiceError, match="no-such-monitor"):
            ServiceClient(address).run_specs([bad])

    def test_unknown_route_404(self, server):
        _, address = server
        with pytest.raises(ServiceError, match="404|no route"):
            ServiceClient(address)._request_json("GET", "/nope")

    def test_bad_run_body_400(self, server):
        _, address = server
        with pytest.raises(ServiceError, match="400"):
            ServiceClient(address)._request_json(
                "POST", "/run", b'{"specs": 7}'
            )

    def test_campaign_run_against_server(self, server, tmp_path):
        _, address = server
        path = tmp_path / "campaign.json"
        path.write_text(
            json.dumps(
                {
                    "settings": {"instructions": 1500, "seed": 11},
                    "grid": {
                        "benchmarks": ["astar"],
                        "monitors": ["memleak"],
                    },
                }
            )
        )
        results = Campaign.load(path).run(server=address)
        reference = SerialRunner().run(
            spec_grid(["astar"], ["memleak"], [SystemConfig()], TINY)
        )
        assert results.to_dict() == reference.to_dict()


class TestClientAddresses:
    def test_bad_addresses_rejected(self):
        for address in ("ftp://x", "http://host:notaport", "plainhost"):
            with pytest.raises(ServiceError, match="address"):
                ServiceClient(address)

    def test_tcp_server_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "tcp.db")
        instance = CampaignServer(
            store=store,
            port=0,
            scheduler=SpecScheduler(store=store, use_processes=False),
        )
        address = instance.start_background()
        try:
            assert address.startswith("http://127.0.0.1:")
            results = ServiceClient(address).run_specs(GRID[:1])
            reference = SerialRunner().run(GRID[:1])
            assert results.to_dict() == reference.to_dict()
        finally:
            instance.stop_background()

    def test_shutdown_route_stops_server(self, tmp_path):
        instance = CampaignServer(
            socket_path=str(tmp_path / "stop.sock"),
            scheduler=SpecScheduler(use_processes=False),
        )
        address = instance.start_background()
        client = ServiceClient(address, timeout=30.0)
        assert client.shutdown_server() == {"stopping": True}
        instance._thread.join(timeout=30)
        assert not instance._thread.is_alive()


class TestCliCampaign:
    def test_campaign_show_and_run(self, tmp_path, capsys):
        path = tmp_path / "campaign.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli-mini",
                    "settings": {"instructions": 1200, "seed": 3},
                    "grid": {
                        "benchmarks": ["astar"],
                        "monitors": ["memleak"],
                        "configs": [{}, {"fade_enabled": False}],
                    },
                }
            )
        )
        assert cli.main(["campaign", "show", str(path)]) == 0
        shown = capsys.readouterr().out
        assert "cli-mini" in shown and "2 spec(s)" in shown
        assert cli.main(["campaign", "run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "astar" in out and "memleak" in out

    def test_campaign_bad_file_is_error_exit(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert cli.main(["campaign", "show", str(path)]) == 2
        assert "error" in capsys.readouterr().err
