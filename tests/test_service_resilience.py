"""The resilience layer end-to-end: scheduler deadlines/retries and the
degrade→recover state machine, client disconnect/reconnect semantics,
health/stats surfacing, graceful signal shutdown of ``repro serve``, and
one full chaos round as an integration check."""

import asyncio
import dataclasses
import json
import logging
import os
import pathlib
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import cli
from repro.api import (
    ExperimentSettings,
    ResultStore,
    SerialRunner,
    spec_grid,
)
from repro.common.errors import ServiceDisconnected, SpecTimeout
from repro.faults import (
    FaultEvent,
    FaultPlan,
    generate_plan,
    install_plan,
    spec_fault_key,
    uninstall_plan,
)
from repro.service import CampaignServer, ServiceClient, ServiceError
from repro.service.scheduler import SpecScheduler
from repro.system.config import SystemConfig

TINY = ExperimentSettings(num_instructions=1500, seed=11)

GRID = spec_grid(
    ["astar", "mcf"],
    ["memleak", "addrcheck"],
    [SystemConfig()],
    TINY,
)


@pytest.fixture(autouse=True)
def _clean_injector():
    uninstall_plan()
    yield
    uninstall_plan()


def run_async(coroutine):
    return asyncio.run(coroutine)


class TestSchedulerDeadlines:
    def test_hang_times_out_and_retry_recovers(self):
        # The victim hangs past the deadline once; the retry (the fault is
        # claimed, so it cannot refire) computes the correct result.
        install_plan(FaultPlan(
            events=(FaultEvent(
                "e0", "worker_hang", "worker",
                key=spec_fault_key(GRID[0]), param=0.4,
            ),),
            seed=0,
        ))
        scheduler = SpecScheduler(use_processes=False, spec_timeout=0.25)

        async def main():
            return await scheduler.execute(GRID[0])

        outcome = run_async(main())
        scheduler.shutdown()
        reference = SerialRunner().run(GRID[:1])
        assert outcome.result.to_dict() == (
            reference.records[0].result.to_dict()
        )
        stats = scheduler.stats()
        assert stats["timeouts"] >= 1
        assert stats["retries"] >= 1

    def test_deadline_exhaustion_raises_spec_timeout(self):
        # Every attempt blows the deadline -> SpecTimeout reaches the
        # caller and the error is counted.
        from repro.faults import RetryPolicy

        scheduler = SpecScheduler(
            use_processes=False,
            spec_timeout=0.01,
            retry_policy=RetryPolicy(
                attempts=2, base_delay=0.01, max_delay=0.01
            ),
        )
        slow = GRID[0].replace(
            settings=dataclasses.replace(TINY, num_instructions=400_000)
        )

        async def main():
            return await scheduler.execute(slow)

        with pytest.raises(SpecTimeout, match="deadline"):
            run_async(main())
        scheduler.shutdown()
        stats = scheduler.stats()
        assert stats["timeouts"] >= 2
        assert stats["errors"] == 1


class TestDegradeRecover:
    def test_pool_broken_degrades_then_recovers(self, caplog):
        install_plan(FaultPlan(
            events=(FaultEvent(
                "e0", "pool_broken", "scheduler.submit",
                key=spec_fault_key(GRID[0]),
            ),),
            seed=0,
        ))
        scheduler = SpecScheduler(
            use_processes=True, workers=1, pool_cooldown=0.2
        )
        reference = SerialRunner().run(GRID[:2])

        async def first():
            return await scheduler.execute(GRID[0])

        with caplog.at_level(logging.WARNING, logger="repro.service"):
            outcome = run_async(first())
        assert outcome.result.to_dict() == (
            reference.records[0].result.to_dict()
        )
        stats = scheduler.stats()
        assert stats["degrades"] == 1
        assert stats["faults_injected"] == 1
        assert stats["degraded"] is True
        assert stats["executor"] == "thread"
        degrade_logs = [
            record for record in caplog.records
            if "scheduler degraded" in record.message
        ]
        assert len(degrade_logs) == 1  # the transition is logged once

        time.sleep(0.25)  # let the recovery cooldown elapse

        async def second():
            return await scheduler.execute(GRID[1])

        outcome = run_async(second())
        scheduler.shutdown()
        assert outcome.result.to_dict() == (
            reference.records[1].result.to_dict()
        )
        stats = scheduler.stats()
        assert stats["recoveries"] == 1
        assert stats["degraded"] is False
        assert stats["executor"] == "process"

    def test_repeat_degrade_logs_once(self, caplog):
        scheduler = SpecScheduler(use_processes=True, workers=1)
        with caplog.at_level(logging.WARNING, logger="repro.service"):
            scheduler._degrade_to_thread()
            scheduler._degrade_to_thread()  # already on threads: no re-log
        scheduler.shutdown()
        degrade_logs = [
            record for record in caplog.records
            if "scheduler degraded" in record.message
        ]
        assert len(degrade_logs) == 1
        assert scheduler.stats()["degrades"] == 1


@pytest.fixture
def server(tmp_path):
    """A background campaign server on a Unix socket with a SQLite store
    (thread scheduler: tests must not pay fork-pool startup)."""
    store = ResultStore(tmp_path / "server.db")
    instance = CampaignServer(
        store=store,
        socket_path=str(tmp_path / "server.sock"),
        scheduler=SpecScheduler(store=store, use_processes=False),
    )
    address = instance.start_background()
    yield instance, address
    instance.stop_background()


class TestClientDisconnect:
    def _disconnect_plan(self, ordinal=1):
        return FaultPlan(
            events=(FaultEvent(
                "e0", "server_disconnect", "server.stream", at=ordinal
            ),),
            seed=0,
        )

    def test_submit_raises_service_disconnected(self, server):
        _, address = server
        install_plan(self._disconnect_plan(ordinal=2))
        client = ServiceClient(address)
        with pytest.raises(ServiceDisconnected) as info:
            list(client.submit(GRID))
        # The exception carries what DID complete, keyed by batch index.
        assert isinstance(info.value.completed, dict)
        for index, event in info.value.completed.items():
            assert 0 <= index < len(GRID)
            assert event["event"] == "spec"

    def test_run_specs_reconnects_and_resumes(self, server):
        _, address = server
        reference = SerialRunner().run(GRID)
        install_plan(self._disconnect_plan(ordinal=2))
        client = ServiceClient(address)
        results = client.run_specs(GRID)
        assert len(results.records) == len(GRID)
        for got, want in zip(results.records, reference.records):
            assert got.spec == want.spec
            assert got.result.to_dict() == want.result.to_dict()
        # The resume was idempotent: nothing was computed twice (the
        # resubmitted prefix answered warm from the store).
        stats = ServiceClient(address).stats()
        assert stats["server"]["computed"] == len(GRID)

    def test_reconnect_false_fails_fast(self, server):
        _, address = server
        install_plan(self._disconnect_plan(ordinal=1))
        client = ServiceClient(address)
        with pytest.raises(ServiceError, match="incomplete result stream"):
            client.run_specs(GRID, reconnect=False)


class TestHealthAndStats:
    def test_health_reports_degraded(self, tmp_path):
        store = ResultStore(tmp_path / "server.db")
        scheduler = SpecScheduler(store=store, use_processes=True)
        instance = CampaignServer(
            store=store,
            socket_path=str(tmp_path / "server.sock"),
            scheduler=scheduler,
        )
        address = instance.start_background()
        try:
            client = ServiceClient(address)
            assert client.health()["status"] == "ok"
            scheduler._degrade_to_thread()
            health = client.health()
            assert health["ok"] is True  # degraded but serving
            assert health["status"] == "degraded"
        finally:
            instance.stop_background()

    def test_stats_expose_resilience_counters(self, server):
        _, address = server
        stats = ServiceClient(address).stats()
        for counter in (
            "retries", "timeouts", "faults_injected", "degrades",
            "recoveries", "store_write_failures",
        ):
            assert counter in stats["server"]
        assert stats["faults"] is None  # no plan installed

    def test_stats_include_fault_summary_when_plan_active(self, server):
        _, address = server
        install_plan(FaultPlan(
            events=(FaultEvent(
                "e0", "server_disconnect", "server.stream", at=999
            ),),
            seed=0,
        ))
        stats = ServiceClient(address).stats()
        assert stats["faults"]["planned"] == 1

    def test_cache_stats_against_live_server(self, server, capsys):
        _, address = server
        status = cli.main(["cache", "stats", "--server", address, "--json"])
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert "retries" in payload["server"]
        assert "timeouts" in payload["server"]

    def test_cache_clear_against_server_refused(self, server, capsys):
        _, address = server
        status = cli.main(["cache", "clear", "--server", address])
        assert status == 2


def _child_pids(pid):
    children = []
    for entry in pathlib.Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            fields = (entry / "stat").read_text().rsplit(")", 1)[1].split()
        except (OSError, IndexError):
            continue
        if int(fields[1]) == pid:  # field 4 of stat: ppid
            children.append(int(entry.name))
    return children


def _wait_gone(pids, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        alive = [pid for pid in pids if pathlib.Path(f"/proc/{pid}").exists()]
        if not alive:
            return True
        time.sleep(0.05)
    return not alive


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
class TestGracefulSignalShutdown:
    def test_serve_drains_on_signal(self, tmp_path, signum):
        socket_path = tmp_path / "serve.sock"
        store_path = tmp_path / "store.db"
        shm_before = set(os.listdir("/dev/shm")) if os.path.isdir(
            "/dev/shm"
        ) else set()
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            pathlib.Path(__file__).resolve().parent.parent / "src"
        )
        env.pop("REPRO_FAULT_DIR", None)
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--socket", str(socket_path),
                "--result-cache", str(store_path),
                "--workers", "1",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and not socket_path.exists():
                assert process.poll() is None, process.stderr.read().decode()
                time.sleep(0.05)
            assert socket_path.exists(), "server never started listening"

            # Submit a batch from a background thread, then signal the
            # server while the stream is (likely still) in flight.  The
            # drain must let the in-flight connection finish normally.
            address = f"unix://{socket_path}"
            received = {}

            def submit():
                try:
                    received["results"] = ServiceClient(address).run_specs(
                        GRID, reconnect=False
                    )
                except Exception as error:  # surfaced via assert below
                    received["error"] = error

            thread = threading.Thread(target=submit)
            thread.start()
            time.sleep(0.3)  # let the batch reach the server
            workers = _child_pids(process.pid)
            process.send_signal(signum)
            stdout, stderr = process.communicate(timeout=60)
            thread.join(timeout=60)

            assert process.returncode == 0, stderr.decode()
            assert b"stopped (drained)" in stderr
            assert "error" not in received, repr(received.get("error"))
            results = received["results"]
            assert len(results.records) == len(GRID)

            # In-flight work was journaled: the store holds every spec.
            store = ResultStore(store_path)
            assert store.stats()["entries"] == len(GRID)
            store.close()

            # The listener socket is unlinked, fork workers are gone, and
            # no shared-memory segments leaked.
            assert not socket_path.exists()
            assert _wait_gone(workers), f"orphaned workers: {workers}"
            if os.path.isdir("/dev/shm"):
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    leaked = set(os.listdir("/dev/shm")) - shm_before
                    if not leaked:
                        break
                    time.sleep(0.1)
                assert not leaked, f"leaked /dev/shm entries: {leaked}"
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()


class TestChaosIntegration:
    def test_one_round_is_clean_and_deterministic(self, tmp_path):
        from repro.faults.chaos import run_chaos

        report = run_chaos(
            seed=3,
            rounds=1,
            root=str(tmp_path / "chaos"),
            batch=4,
            jobs=2,
            workers=2,
            spec_timeout=3.0,
            pool_cooldown=0.5,
            hang_seconds=1.0,
            slow_seconds=0.1,
        )
        assert report.ok, report.to_dict()
        assert report.faults_fired == report.faults_planned
        assert len(report.kinds_fired) >= 6
        assert (tmp_path / "chaos" / "report.json").exists()
        # Fault schedules are a pure function of (seed, round): the same
        # seed plans the identical event list.
        plan_a = generate_plan(7, ["k0", "k1", "k2"], writes_expected=3)
        plan_b = generate_plan(7, ["k0", "k1", "k2"], writes_expected=3)
        assert plan_a == plan_b
