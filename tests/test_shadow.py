"""Tests for repro.metadata.shadow: shadow memory and registers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import WORD_SIZE
from repro.metadata import ShadowMemory, ShadowRegisters


class TestShadowMemory:
    def test_default_for_unshadowed(self):
        shadow = ShadowMemory(default=7)
        assert shadow.read(0x1234) == 7

    def test_word_granularity(self):
        shadow = ShadowMemory()
        shadow.write(0x1000, 5)
        for offset in range(WORD_SIZE):
            assert shadow.read(0x1000 + offset) == 5
        assert shadow.read(0x1004) == 0

    def test_write_reports_change(self):
        shadow = ShadowMemory()
        assert shadow.write(0x10, 1)
        assert not shadow.write(0x10, 1)
        assert shadow.write(0x10, 2)

    def test_writing_default_reclaims_storage(self):
        shadow = ShadowMemory(default=0)
        shadow.write(0x10, 3)
        assert len(shadow) == 1
        shadow.write(0x10, 0)
        assert len(shadow) == 0
        assert shadow.read(0x10) == 0

    def test_rejects_out_of_range_values(self):
        shadow = ShadowMemory()
        with pytest.raises(ValueError):
            shadow.write(0, 256)
        with pytest.raises(ValueError):
            ShadowMemory(default=300)

    def test_bulk_set_equals_word_loop(self):
        bulk = ShadowMemory()
        loop = ShadowMemory()
        start, length, value = 0x103, 37, 9
        words = bulk.bulk_set(start, length, value)
        count = 0
        from repro.common.units import words_in_range

        for word in words_in_range(start, length):
            loop.write(word, value)
            count += 1
        assert words == count
        assert bulk.snapshot() == loop.snapshot()

    def test_snapshot_is_a_copy(self):
        shadow = ShadowMemory()
        shadow.write(0x10, 3)
        snapshot = shadow.snapshot()
        shadow.write(0x20, 4)
        assert 0x20 - (0x20 % WORD_SIZE) not in snapshot

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=256),
                st.integers(min_value=0, max_value=255),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_last_write_wins(self, writes):
        """Property: a read returns the last write to the containing word."""
        shadow = ShadowMemory(default=0)
        model = {}
        for address, value in writes:
            shadow.write(address, value)
            model[ShadowMemory.word_address(address)] = value
        for word, value in model.items():
            assert shadow.read(word) == value


class TestShadowRegisters:
    def test_defaults(self):
        registers = ShadowRegisters(num_registers=8, default=3)
        assert all(registers.read(index) == 3 for index in range(8))

    def test_write_and_change_detection(self):
        registers = ShadowRegisters()
        assert registers.write(4, 9)
        assert not registers.write(4, 9)
        assert registers.read(4) == 9

    def test_reset(self):
        registers = ShadowRegisters(default=1)
        registers.write(2, 200)
        registers.reset()
        assert registers.read(2) == 1

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError):
            ShadowRegisters().write(0, 999)

    def test_out_of_range_index_raises(self):
        with pytest.raises(IndexError):
            ShadowRegisters(num_registers=4).read(99)

    def test_snapshot(self):
        registers = ShadowRegisters(num_registers=3)
        registers.write(1, 5)
        assert registers.snapshot() == (0, 5, 0)
