"""Shared-memory trace lifecycle under worker failure: a worker dying
mid-attach leaks no segments, and every attach failure falls back to
regeneration with bit-identical results.
"""

import multiprocessing
import os
import pathlib

import pytest

from repro.api import ExperimentSettings, RunSpec
from repro.api.cache import RunnerCache
from repro.api.runner import _worker_run_chunk, execute_spec
from repro.api.shm import (
    SharedTraceArena,
    SharedTraceHandle,
    attach_trace,
    shared_memory_available,
)
from repro.system.config import SystemConfig
from repro.verify.oracle import result_digest
from repro.workload.generator import generate_trace
from repro.workload.profiles import get_profile

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no multiprocessing.shared_memory"
)

SETTINGS = ExperimentSettings(num_instructions=800, seed=5)

_DEV_SHM = pathlib.Path("/dev/shm")


def _shm_names() -> set:
    if not _DEV_SHM.is_dir():  # Non-Linux: skip the leak accounting.
        return set()
    return {entry.name for entry in _DEV_SHM.iterdir()}


def _exploding_chunk(payload):
    """Pool-worker stand-in that dies before producing a result (top-level
    so the pool can pickle it by name; fork workers share the module)."""
    os._exit(3)


def _attach_and_die(handle: SharedTraceHandle) -> None:
    """Worker body: attach the shared trace, then die hard without any
    cleanup — no close, no detach, no interpreter shutdown hooks."""
    trace = attach_trace(handle)
    os._exit(0 if trace is not None else 17)


class TestWorkerDeathMidAttach:
    def test_no_leaked_segments_and_attach_fallback(self):
        before = _shm_names()
        trace = generate_trace(
            get_profile("astar"), SETTINGS.num_instructions, seed=SETTINGS.seed
        )
        arena = SharedTraceArena()
        try:
            handle = arena.share(trace)
            if handle is None:
                pytest.skip("shared memory unavailable on this platform")
            context = multiprocessing.get_context("fork")
            worker = context.Process(target=_attach_and_die, args=(handle,))
            worker.start()
            worker.join(timeout=30)
            assert worker.exitcode == 0  # It really attached before dying.
        finally:
            arena.cleanup()
        # The parent owns the unlink: after cleanup the segment is gone even
        # though the worker died holding an attachment and never detached.
        assert handle.segment_name not in _shm_names()
        assert _shm_names() <= before | set()
        # Late attachment (a straggler worker racing the unlink) degrades to
        # None — the caller regenerates instead of crashing.
        assert attach_trace(handle) is None

    def test_cleanup_idempotent_after_worker_crash(self):
        trace = generate_trace(
            get_profile("astar"), SETTINGS.num_instructions, seed=SETTINGS.seed
        )
        arena = SharedTraceArena()
        handle = arena.share(trace)
        if handle is None:
            pytest.skip("shared memory unavailable on this platform")
        arena.cleanup()
        arena.cleanup()  # Second pass must be a no-op, not an error.
        assert len(arena) == 0


class TestRegenerationFallback:
    def test_stale_handle_regenerates_bit_identical(self):
        """A chunk shipped with a dead segment name still executes: the
        worker-side attach fails silently and the trace is regenerated from
        the profile, with results identical to a healthy run."""
        spec = RunSpec("astar", "memleak", SystemConfig(), SETTINGS)
        expected = result_digest(execute_spec(spec, RunnerCache()))
        ghost = SharedTraceHandle(
            "psm_repro_gone_0000", {"schema": -1, "count": 0}
        )
        key = (spec.benchmark, SETTINGS.num_instructions, SETTINGS.seed, None)
        results = _worker_run_chunk(([spec], {key: ghost}))
        assert [result_digest(result) for result in results] == [expected]

    def test_dead_worker_grid_falls_back_serially(self, monkeypatch):
        """A pool whose workers die immediately degrades to serial
        execution (BrokenProcessPool handling) without losing results."""
        from repro.api import runner as runner_module

        monkeypatch.setattr(
            runner_module, "_worker_run_chunk", _exploding_chunk
        )
        specs = [
            RunSpec("astar", "memleak", SystemConfig(), SETTINGS),
            RunSpec("astar", "addrcheck", SystemConfig(), SETTINGS),
        ]
        expected = [
            result_digest(execute_spec(spec, RunnerCache())) for spec in specs
        ]
        runner = runner_module.ParallelRunner(jobs=2)
        with pytest.warns(RuntimeWarning, match="running serially"):
            results = runner.run(specs)
        assert [result_digest(r) for r in results.results] == expected
