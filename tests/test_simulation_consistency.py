"""Cross-checks between the timed simulator and pure functional replay.

The timed simulation must be a *scheduling* of the same functional work: the
monitor's final state, reports and per-event handler outcomes cannot depend
on queue sizes, core types or FADE being present (for clean traces where
filtering is sound).
"""

import pytest

from repro.cores import CoreType
from repro.isa.events import MonitoredEvent
from repro.isa.instruction import Instruction
from repro.monitors import create_monitor
from repro.system import SystemConfig, simulate
from repro.workload import generate_trace, get_profile
from repro.workload.trace import HighLevelEvent


def functional_replay(monitor_name, trace):
    """The ground-truth software-only execution of a trace."""
    monitor = create_monitor(monitor_name)
    handlers = 0
    for index, item in enumerate(trace):
        if isinstance(item, HighLevelEvent):
            monitor.handle_high_level(item)
            handlers += 1
            continue
        if not monitor.wants(item):
            continue
        event = MonitoredEvent.from_instruction(item, index)
        if event.is_stack_update:
            monitor.handle_stack_update(event.stack_update)
        else:
            monitor.handle_event(event)
        handlers += 1
    return monitor, handlers


@pytest.mark.parametrize("monitor_name,bench", [
    ("addrcheck", "astar"),
    ("memcheck", "gcc"),
    ("taintcheck", "omnetpp"),
    ("memleak", "gobmk"),
    ("atomcheck", "water"),
])
def test_unaccelerated_simulation_matches_functional_replay(monitor_name, bench):
    """Queueing and SMT timing must not change what the monitor computes."""
    profile = get_profile(bench)
    trace = generate_trace(profile, 2500, seed=23)
    reference, reference_handlers = functional_replay(monitor_name, trace)

    monitor = create_monitor(monitor_name)
    result = simulate(trace, monitor, SystemConfig(fade_enabled=False), profile)

    assert monitor.critical_mem.snapshot() == reference.critical_mem.snapshot()
    assert monitor.critical_regs.snapshot() == reference.critical_regs.snapshot()
    assert [str(r) for r in result.reports] == [str(r) for r in reference.reports]
    assert result.handlers_executed == reference_handlers


@pytest.mark.parametrize("monitor_name,bench", [
    ("memcheck", "astar"),
    ("memleak", "astar"),
    ("taintcheck", "bzip"),
])
def test_fade_reaches_the_same_final_state(monitor_name, bench):
    """Filtering (being sound) must not change the final critical metadata
    or the reported bugs relative to software-only execution."""
    profile = get_profile(bench)
    trace = generate_trace(profile, 2500, seed=29)
    reference, _ = functional_replay(monitor_name, trace)

    monitor = create_monitor(monitor_name)
    result = simulate(trace, monitor, SystemConfig(fade_enabled=True), profile)

    assert monitor.critical_mem.snapshot() == reference.critical_mem.snapshot()
    assert [str(r) for r in result.reports] == [str(r) for r in reference.reports]


@pytest.mark.parametrize("core", [CoreType.INORDER, CoreType.OOO2, CoreType.OOO4])
def test_core_type_does_not_change_functional_outcome(core):
    profile = get_profile("astar")
    trace = generate_trace(profile, 2000, seed=31)
    monitor = create_monitor("memleak")
    simulate(trace, monitor, SystemConfig(core_type=core, fade_enabled=True), profile)
    reference, _ = functional_replay("memleak", trace)
    assert monitor.critical_mem.snapshot() == reference.critical_mem.snapshot()


def test_queue_capacity_does_not_change_functional_outcome():
    profile = get_profile("omnetpp")
    trace = generate_trace(profile, 2000, seed=37)
    snapshots = []
    for capacity in (4, 32, None):
        monitor = create_monitor("taintcheck")
        simulate(
            trace, monitor,
            SystemConfig(fade_enabled=True, event_queue_capacity=capacity),
            profile,
        )
        snapshots.append(monitor.critical_mem.snapshot())
    assert snapshots[0] == snapshots[1] == snapshots[2]
