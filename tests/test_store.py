"""The content-addressed ResultStore and the runner paths around it:
store hits are bit-identical to recomputation, keys invalidate on any input
change, and serial / parallel / warm-store execution of the same grid agree
byte for byte.
"""

import dataclasses
import json
import warnings

import pytest

from repro import cli
from repro.api import (
    ExperimentSettings,
    ParallelRunner,
    ResultStore,
    SerialRunner,
    register_monitor,
    register_profile,
    run_specs,
    spec_grid,
)
from repro.api import runner as runner_module
from repro.monitors import MONITOR_REGISTRY
from repro.monitors.memleak import MemLeak
from repro.system.config import SystemConfig
from repro.workload.profiles import PROFILE_REGISTRY, get_profile

TINY = ExperimentSettings(num_instructions=1500, seed=11)

GRID = spec_grid(
    ["astar", "mcf"],
    ["memleak", "addrcheck"],
    [SystemConfig(), SystemConfig(fade_enabled=False)],
    TINY,
)


class TestResultStore:
    def test_hit_is_bit_identical_to_recompute(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        cold = SerialRunner(store=store).run(GRID)
        assert store.hits == 0 and store.misses == len(GRID)

        warm_store = ResultStore(tmp_path / "cache")
        warm = SerialRunner(store=warm_store).run(GRID)
        assert warm_store.hits == len(GRID) and warm_store.misses == 0

        plain = SerialRunner().run(GRID)
        assert cold.to_dict() == warm.to_dict() == plain.to_dict()

    def test_key_changes_on_every_spec_axis(self, tmp_path):
        store = ResultStore(tmp_path)
        base = GRID[0]
        variants = [
            base.replace(benchmark="mcf"),
            base.replace(monitor="addrcheck"),
            base.replace(config=SystemConfig(fade_enabled=False)),
            base.replace(settings=TINY.scaled(2.0)),
        ]
        keys = {store.key(spec) for spec in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_profile_replacement_invalidates(self, tmp_path):
        store = ResultStore(tmp_path)
        base = get_profile("astar")
        register_profile(dataclasses.replace(base, name="storemut"))
        try:
            spec = GRID[0].replace(benchmark="storemut")
            before = store.key(spec)
            register_profile(
                dataclasses.replace(base, name="storemut", locality=0.5),
                replace=True,
            )
            assert store.key(spec) != before
        finally:
            PROFILE_REGISTRY.unregister("storemut")

    def test_monitor_replacement_invalidates(self, tmp_path):
        store = ResultStore(tmp_path)

        class OtherLeak(MemLeak):
            pass

        register_monitor("storeleak", MemLeak)
        try:
            spec = GRID[0].replace(monitor="storeleak")
            before = store.key(spec)
            register_monitor("storeleak", OtherLeak, replace=True)
            assert store.key(spec) != before
        finally:
            MONITOR_REGISTRY.unregister("storeleak")

    def test_trace_schema_version_invalidates(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        before = store.key(GRID[0])
        monkeypatch.setattr("repro.api.store.TRACE_SCHEMA_VERSION", 999)
        assert store.key(GRID[0]) != before

    def test_corrupt_entry_is_a_miss_and_recomputed(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = GRID[0]
        result = SerialRunner(store=store).run_one(spec)
        entry = store._entry_path(store.key(spec))
        entry.write_text("{ truncated garbage")
        reread = store.get(spec)
        assert reread is None
        assert not entry.exists()  # Corrupt entry dropped.
        again = SerialRunner(store=store).run_one(spec)
        assert again.to_dict() == result.to_dict()

    def test_stats_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        SerialRunner(store=store).run(GRID[:2])
        stats = store.stats()
        assert stats["entries"] == 2 and stats["bytes"] > 0
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0

    def test_run_specs_accepts_store(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_specs(GRID[:2], store=store)
        second = run_specs(GRID[:2], store=ResultStore(tmp_path))
        assert first.to_dict() == second.to_dict()

    def test_run_specs_never_mutates_the_callers_runner(self, tmp_path):
        runner = SerialRunner()
        run_specs(GRID[:1], runner=runner, store=ResultStore(tmp_path))
        assert runner.store is None  # Store was scoped to that call only.

    def test_run_specs_serial_uses_default_runner(self):
        from repro.api import default_runner, set_default_runner

        class MarkerRunner(SerialRunner):
            pass

        marker = MarkerRunner()
        set_default_runner(marker)
        try:
            run_specs(GRID[:1])
            assert default_runner() is marker  # Override honoured, untouched.
            assert marker.cache.stats()["traces"] > 0  # It did the run.
        finally:
            set_default_runner(None)


class TestCrossProcessDeterminism:
    def test_serial_parallel_and_warm_store_agree(self, tmp_path):
        """The satellite guarantee: SerialRunner, ParallelRunner (fork pool,
        shared-memory traces) and a warm ResultStore produce identical
        ResultSet JSON for the same specs."""
        serial = SerialRunner().run(GRID)
        parallel = ParallelRunner(jobs=2).run(GRID)

        store = ResultStore(tmp_path / "cache")
        SerialRunner(store=store).run(GRID)  # Populate.
        warm_store = ResultStore(tmp_path / "cache")
        warmed = ParallelRunner(jobs=2, store=warm_store).run(GRID)
        assert warm_store.hits == len(GRID)

        reference = json.dumps(serial.to_dict(), sort_keys=True)
        assert json.dumps(parallel.to_dict(), sort_keys=True) == reference
        assert json.dumps(warmed.to_dict(), sort_keys=True) == reference

    def test_parallel_without_trace_sharing_matches(self):
        plain = ParallelRunner(jobs=2, share_traces=False).run(GRID)
        shared = ParallelRunner(jobs=2, share_traces=True).run(GRID)
        assert plain.to_dict() == shared.to_dict()

    def test_pickle_fallback_when_shared_memory_unavailable(self, monkeypatch):
        """When segment creation fails, packed traces travel pickled in the
        chunk payloads (workers never regenerate) with identical results."""
        monkeypatch.setattr(
            runner_module.SharedTraceArena, "share", lambda self, trace: None
        )
        fallback = ParallelRunner(jobs=2).run(GRID)
        assert fallback.to_dict() == SerialRunner().run(GRID).to_dict()


class TestChunkingHeuristic:
    def test_tiny_grid_runs_serially(self, monkeypatch):
        """Grids smaller than the worker count never pay pool startup."""

        def exploding_pool(*args, **kwargs):
            raise AssertionError("tiny grid must not create a process pool")

        monkeypatch.setattr(
            runner_module, "ProcessPoolExecutor", exploding_pool
        )
        runner = ParallelRunner(jobs=8)
        results = runner.run(GRID[:3])  # 3 specs < 8 jobs.
        assert results.to_dict() == SerialRunner().run(GRID[:3]).to_dict()

    def test_large_grid_still_uses_the_pool(self, monkeypatch):
        used = {"pool": False}
        real_pool = runner_module.ProcessPoolExecutor

        def counting_pool(*args, **kwargs):
            used["pool"] = True
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", counting_pool)
        ParallelRunner(jobs=2).run(GRID)
        assert used["pool"]


class TestSpawnWarning:
    def test_warns_once_when_fork_unavailable(self, monkeypatch):
        real_get_context = runner_module.multiprocessing.get_context

        def no_fork(method=None):
            if method == "fork":
                raise ValueError("fork not supported here")
            return real_get_context(method)

        monkeypatch.setattr(
            runner_module.multiprocessing, "get_context", no_fork
        )
        monkeypatch.setattr(runner_module, "_SPAWN_WARNING_EMITTED", False)
        runner = ParallelRunner(jobs=2)
        with pytest.warns(RuntimeWarning, match="register_monitor"):
            first = runner.run(GRID)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            second = runner.run(GRID)  # One-time: no second warning.
        assert first.to_dict() == second.to_dict()


class TestCliCache:
    def test_result_cache_flag_and_cache_command(self, tmp_path, capsys):
        cache_dir = tmp_path / "cli-cache"
        assert cli.main(
            ["table2", "-n", "1000", "--result-cache", str(cache_dir)]
        ) == 0
        first = capsys.readouterr().out
        assert cli.main(["cache", "stats", "--result-cache", str(cache_dir)]) == 0
        stats_out = capsys.readouterr().out
        assert "entries: " in stats_out and "entries: 0" not in stats_out
        # Warm re-run prints the identical table.
        assert cli.main(
            ["table2", "-n", "1000", "--result-cache", str(cache_dir)]
        ) == 0
        assert capsys.readouterr().out == first
        assert cli.main(["cache", "clear", "--result-cache", str(cache_dir)]) == 0
        assert "removed" in capsys.readouterr().out
        assert cli.main(["cache", "stats", "--result-cache", str(cache_dir)]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_cache_env_var_default(self, tmp_path, monkeypatch, capsys):
        cache_dir = tmp_path / "env-cache"
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(cache_dir))
        assert cli.main(["run", "-n", "1200"]) == 0
        capsys.readouterr()
        assert cli.main(["cache", "stats"]) == 0
        assert "entries: 1" in capsys.readouterr().out

    def test_cache_command_without_path_errors(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        assert cli.main(["cache", "stats"]) == 1
        assert "result-cache" in capsys.readouterr().err


# --- concurrent writers (top-level: fork-context Process targets) -----------

def _race_writer(path, spec_json, result_json, rounds):
    """Hammer one store entry from a separate process."""
    import json as _json

    from repro.api import RunSpec as _RunSpec
    from repro.api import ResultStore as _ResultStore
    from repro.system.results import RunResult as _RunResult

    store = _ResultStore(path)
    spec = _RunSpec.from_json(spec_json)
    result = _RunResult.from_dict(_json.loads(result_json))
    for _ in range(rounds):
        store.put(spec, result)


class TestConcurrentWriters:
    """Two processes racing puts on the same shard: readers only ever see
    a missing entry or a complete one (atomic replace), corrupt entries
    self-heal while writers race, and no temp files leak."""

    def test_racing_puts_same_entry(self, tmp_path):
        import multiprocessing

        store_path = tmp_path / "race"
        spec = GRID[0]
        store = ResultStore(store_path)
        result = SerialRunner().run([spec]).results[0]
        expected = json.dumps(result.to_dict(), sort_keys=True)
        payload = (
            str(store_path),
            spec.to_json(),
            json.dumps(result.to_dict()),
            60,
        )
        context = multiprocessing.get_context("fork")
        writers = [
            context.Process(target=_race_writer, args=payload)
            for _ in range(2)
        ]
        for writer in writers:
            writer.start()
        # Read concurrently with the racing writers: every successful get
        # must be the complete entry, bit-identical to the computed result.
        observed_hit = False
        while any(writer.is_alive() for writer in writers):
            hit = store.get(spec)
            if hit is not None:
                observed_hit = True
                assert json.dumps(hit.to_dict(), sort_keys=True) == expected
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0
        final = store.get(spec)
        assert final is not None and observed_hit
        assert json.dumps(final.to_dict(), sort_keys=True) == expected
        # The atomic-replace protocol leaves no temporary files behind.
        assert not list(store_path.rglob(".tmp-*"))
        assert len(store) == 1

    def test_corrupt_entry_heals_under_concurrent_writer(self, tmp_path):
        import multiprocessing

        store_path = tmp_path / "heal"
        store = ResultStore(store_path)
        corrupt_spec, racing_spec = GRID[0], GRID[1]
        racing_result = SerialRunner().run([racing_spec]).results[0]
        # Plant a truncated entry for one spec (a crashed writer predating
        # the atomic protocol), then race a healthy writer on another spec
        # in the same store while the parent triggers self-healing.
        entry = store._entry_path(store.key(corrupt_spec))
        entry.parent.mkdir(parents=True, exist_ok=True)
        entry.write_text('{"result": {"benchmark"')
        context = multiprocessing.get_context("fork")
        writer = context.Process(
            target=_race_writer,
            args=(
                str(store_path),
                racing_spec.to_json(),
                json.dumps(racing_result.to_dict()),
                40,
            ),
        )
        writer.start()
        healed = store.get(corrupt_spec)
        writer.join(timeout=60)
        assert writer.exitcode == 0
        assert healed is None  # Corrupt entries read as misses...
        assert not entry.exists()  # ...and are deleted on sight.
        racing_hit = store.get(racing_spec)
        assert racing_hit is not None
        assert json.dumps(racing_hit.to_dict(), sort_keys=True) == json.dumps(
            racing_result.to_dict(), sort_keys=True
        )


def _seam_writer(path, spec_json, rounds):
    """Repeatedly replace one checkpoint blob with a fresh valid payload
    from a separate process (the live worker gc must never race away)."""
    from repro.api import RunSpec as _RunSpec
    from repro.checkpoint import CheckpointStore as _CheckpointStore

    store = _CheckpointStore(path)
    spec = _RunSpec.from_json(spec_json)
    state = {"engine": "event", "app_index": 123, "now": 456, "payload": "x"}
    try:
        for _ in range(rounds):
            store.put(spec, state)
    finally:
        store.close()


class TestCompareAndDelete:
    """The backends' ``delete_if`` primitive and the gc read→delete window
    it closes: gc only ever deletes the exact payload it judged invalid, so
    a live worker's concurrent put always wins."""

    @pytest.mark.parametrize("suffix", ["dir", "store.db"])
    def test_delete_if_matches_exact_payload(self, tmp_path, suffix):
        store = ResultStore(tmp_path / suffix)
        try:
            backend = store._backend
            backend.write("k1", "payload-a")
            # A stale comparison payload must not delete the fresh entry.
            assert backend.delete_if("k1", "payload-b") is False
            assert backend.read("k1") == "payload-a"
            assert backend.delete_if("k1", "payload-a") is True
            assert backend.read("k1") is None
            # Deleting a missing key is a no-op, not an error.
            assert backend.delete_if("k1", "payload-a") is False
        finally:
            store.close()

    @pytest.mark.parametrize("suffix", ["dir", "store.db"])
    def test_read_prefix(self, tmp_path, suffix):
        store = ResultStore(tmp_path / suffix)
        try:
            backend = store._backend
            backend.write("k1", "header-line\n" + "b" * 10_000)
            assert backend.read_prefix("k1", 16) == "header-line\nbbbb"
            assert backend.read_prefix("missing", 16) is None
        finally:
            store.close()

    def test_gc_never_sweeps_a_racing_writers_fresh_blob(self, tmp_path):
        """Regression for the gc read→delete window: plant a torn blob,
        race a writer that keeps replacing it with valid payloads, and gc
        in a loop — compare-and-delete must spare every payload it did not
        judge, so after the writer finishes the entry is valid (or was
        legitimately swept while torn, never while valid)."""
        import multiprocessing

        from repro.checkpoint import CheckpointStore

        store_path = tmp_path / "ckpt"
        spec = GRID[0]
        store = CheckpointStore(store_path)
        key = store.key(spec)
        store._backend.write(key, "torn{")
        context = multiprocessing.get_context("fork")
        writer = context.Process(
            target=_seam_writer, args=(str(store_path), spec.to_json(), 80)
        )
        writer.start()
        while writer.is_alive():
            store.gc()
        writer.join(timeout=60)
        assert writer.exitcode == 0
        # One final put after every sweep the writer raced against: the
        # last write is valid, and gc must keep it.
        store.gc()
        record = store.get(spec)
        assert record is not None
        assert record["state"]["payload"] == "x"
        store.close()
