"""The ResultStore backend split: sharded JSON and SQLite behind one
interface, selected by URL scheme or file suffix, byte-identical payloads
across backends, multi-process safe, and self-healing on corruption.
"""

import json
import multiprocessing
import sqlite3

import pytest

from repro import cli
from repro.api import ExperimentSettings, ResultStore, SerialRunner, spec_grid
from repro.api.store import _parse_store_path
from repro.system.config import SystemConfig

TINY = ExperimentSettings(num_instructions=1500, seed=11)

GRID = spec_grid(
    ["astar", "mcf"],
    ["memleak", "addrcheck"],
    [SystemConfig(), SystemConfig(fade_enabled=False)],
    TINY,
)


class TestSchemeSelection:
    def test_url_schemes(self, tmp_path):
        backend, path = _parse_store_path(f"sqlite://{tmp_path}/cache.db")
        assert backend == "sqlite" and path.name == "cache.db"
        backend, path = _parse_store_path(f"json://{tmp_path}/cache")
        assert backend == "json" and path.name == "cache"

    def test_suffix_selects_sqlite(self, tmp_path):
        for suffix in (".db", ".sqlite", ".sqlite3"):
            backend, _ = _parse_store_path(str(tmp_path / f"cache{suffix}"))
            assert backend == "sqlite", suffix

    def test_plain_path_is_json(self, tmp_path):
        backend, _ = _parse_store_path(str(tmp_path / "cache"))
        assert backend == "json"

    def test_backend_property(self, tmp_path):
        assert ResultStore(tmp_path / "a").backend == "json"
        assert ResultStore(tmp_path / "a.db").backend == "sqlite"

    def test_unknown_scheme_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="scheme"):
            ResultStore("redis://localhost/0")


class TestCrossBackendParity:
    def test_entries_byte_identical(self, tmp_path):
        """The ISSUE acceptance bar: the same result stored through both
        backends round-trips to the same bytes and the same content key."""
        json_store = ResultStore(tmp_path / "cache")
        sqlite_store = ResultStore(tmp_path / "cache.db")
        results = SerialRunner().run(GRID)
        for spec, result in zip(GRID, results.results):
            assert json_store.key(spec) == sqlite_store.key(spec)
            json_store.put(spec, result)
            sqlite_store.put(spec, result)
        # Raw payloads, read beneath the store API.
        connection = sqlite3.connect(tmp_path / "cache.db")
        sqlite_payloads = {
            key: payload
            for key, payload in connection.execute(
                "SELECT key, payload FROM entries"
            )
        }
        connection.close()
        assert len(sqlite_payloads) == len(GRID)
        for spec in GRID:
            key = json_store.key(spec)
            disk = json_store._entry_path(key).read_text()
            assert disk == sqlite_payloads[key]
        # And both backends re-serve results bit-identically.
        for spec, result in zip(GRID, results.results):
            reference = json.dumps(result.to_dict(), sort_keys=True)
            for store in (json_store, sqlite_store):
                hit = store.get(spec)
                assert json.dumps(hit.to_dict(), sort_keys=True) == reference

    def test_runner_agrees_across_backends(self, tmp_path):
        cold = SerialRunner(store=ResultStore(tmp_path / "cache.db")).run(GRID)
        warm_store = ResultStore(tmp_path / "cache.db")
        warm = SerialRunner(store=warm_store).run(GRID)
        assert warm_store.hits == len(GRID)
        assert warm.to_dict() == cold.to_dict()


class TestSqliteBackend:
    def test_stats_per_shard(self, tmp_path):
        store = ResultStore(tmp_path / "cache.db")
        SerialRunner(store=store).run(GRID[:3])
        stats = store.stats()
        assert stats["backend"] == "sqlite"
        assert stats["entries"] == 3 == len(store)
        assert stats["bytes"] > 0
        assert sum(s["entries"] for s in stats["shards"].values()) == 3
        assert sum(s["bytes"] for s in stats["shards"].values()) == stats["bytes"]

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path / "cache.db")
        SerialRunner(store=store).run(GRID[:2])
        assert store.clear() == 2
        assert len(store) == 0

    def test_readonly_missing_file_is_all_misses(self, tmp_path):
        store = ResultStore(tmp_path / "absent.db", readonly=True)
        assert store.get(GRID[0]) is None
        assert not (tmp_path / "absent.db").exists()  # Never created.

    def test_corrupt_db_self_heals(self, tmp_path):
        path = tmp_path / "cache.db"
        store = ResultStore(path)
        result = SerialRunner().run(GRID[:1]).results[0]
        store.put(GRID[0], result)
        store.close()
        path.write_bytes(b"this is not a sqlite database, sorry")
        healed = ResultStore(path)
        assert healed.get(GRID[0]) is None  # Miss, not an exception.
        healed.put(GRID[0], result)  # Rebuilt: writable again.
        assert healed.get(GRID[0]).to_dict() == result.to_dict()


# --- concurrent writers (top-level: fork-context Process targets) -----------

def _race_writer(path, spec_json, result_json, rounds):
    """Hammer one sqlite store entry from a separate process."""
    import json as _json

    from repro.api import RunSpec as _RunSpec
    from repro.api import ResultStore as _ResultStore
    from repro.system.results import RunResult as _RunResult

    store = _ResultStore(path)
    spec = _RunSpec.from_json(spec_json)
    result = _RunResult.from_dict(_json.loads(result_json))
    for _ in range(rounds):
        store.put(spec, result)
    store.close()


class TestSqliteConcurrentWriters:
    """Two processes racing puts on the same SQLite entry (WAL mode):
    readers only ever see a missing entry or a complete one, bit-identical
    to the computed result — the same guarantee the JSON backend's atomic
    replace provides."""

    def test_racing_puts_same_entry(self, tmp_path):
        store_path = tmp_path / "race.db"
        spec = GRID[0]
        store = ResultStore(store_path)
        result = SerialRunner().run([spec]).results[0]
        expected = json.dumps(result.to_dict(), sort_keys=True)
        payload = (
            str(store_path),
            spec.to_json(),
            json.dumps(result.to_dict()),
            60,
        )
        context = multiprocessing.get_context("fork")
        writers = [
            context.Process(target=_race_writer, args=payload)
            for _ in range(2)
        ]
        for writer in writers:
            writer.start()
        observed_hit = False
        while any(writer.is_alive() for writer in writers):
            hit = store.get(spec)
            if hit is not None:
                observed_hit = True
                assert json.dumps(hit.to_dict(), sort_keys=True) == expected
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0
        final = store.get(spec)
        assert final is not None and observed_hit
        assert json.dumps(final.to_dict(), sort_keys=True) == expected
        assert len(store) == 1

    def test_racing_distinct_entries(self, tmp_path):
        """Writers on different keys never lose each other's rows."""
        store_path = tmp_path / "multi.db"
        results = SerialRunner().run(GRID[:2])
        context = multiprocessing.get_context("fork")
        writers = [
            context.Process(
                target=_race_writer,
                args=(
                    str(store_path),
                    spec.to_json(),
                    json.dumps(result.to_dict()),
                    40,
                ),
            )
            for spec, result in zip(GRID[:2], results.results)
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0
        store = ResultStore(store_path)
        assert len(store) == 2
        for spec, result in zip(GRID[:2], results.results):
            assert store.get(spec).to_dict() == result.to_dict()


class TestCliCacheJson:
    def test_cache_stats_json_sqlite(self, tmp_path, capsys):
        db = tmp_path / "cli.db"
        assert cli.main(
            ["run", "-n", "1200", "--result-cache", f"sqlite://{db}"]
        ) == 0
        capsys.readouterr()
        assert cli.main(
            ["cache", "stats", "--result-cache", str(db), "--json"]
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["backend"] == "sqlite"
        assert stats["entries"] == 1 and stats["bytes"] > 0
        assert sum(s["entries"] for s in stats["shards"].values()) == 1

    def test_cache_stats_json_jsondir(self, tmp_path, capsys):
        cache_dir = tmp_path / "cli-cache"
        assert cli.main(
            ["run", "-n", "1200", "--result-cache", str(cache_dir)]
        ) == 0
        capsys.readouterr()
        assert cli.main(
            ["cache", "stats", "--result-cache", str(cache_dir), "--json"]
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["backend"] == "json" and stats["entries"] == 1
