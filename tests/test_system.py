"""Integration tests for the full monitoring systems (Figure 8)."""

import pytest

from repro.cores import CoreType
from repro.monitors import MONITOR_NAMES, create_monitor
from repro.system import MonitoringSimulation, SystemConfig, Topology, simulate
from repro.system.simulator import simulate_warmed
from repro.workload import generate_trace, get_profile


def run(
    benchmark="astar",
    monitor="memleak",
    n=3000,
    seed=5,
    warmup=0.4,
    **config_kwargs,
):
    profile = get_profile(benchmark)
    trace = generate_trace(profile, n, seed=seed)
    config = SystemConfig(**config_kwargs)
    return simulate_warmed(
        trace, create_monitor(monitor), config, profile, warmup_fraction=warmup
    )


class TestBasicProperties:
    def test_monitoring_is_never_free(self):
        result = run(fade_enabled=False)
        assert result.slowdown >= 1.0

    def test_fade_is_faster_than_unaccelerated(self):
        base = run(fade_enabled=False)
        fade = run(fade_enabled=True)
        assert fade.cycles < base.cycles

    def test_event_conservation(self):
        """Every monitored instruction event is either filtered or handled."""
        result = run(fade_enabled=True)
        stats = result.fade_stats
        assert stats.filtered + stats.unfiltered == stats.instruction_events
        assert stats.instruction_events == result.monitored_events

    def test_unaccelerated_handles_every_event(self):
        result = run(fade_enabled=False, monitor="addrcheck")
        expected = (
            result.monitored_events
            + result.stack_update_events
            + result.high_level_events
        )
        assert result.handlers_executed == expected

    def test_deterministic(self):
        first = run(fade_enabled=True)
        second = run(fade_enabled=True)
        assert first.cycles == second.cycles
        assert first.filtering_ratio == second.filtering_ratio

    def test_infinite_event_queue_never_rejects(self):
        result = run(fade_enabled=True, event_queue_capacity=None)
        assert result.event_queue_stats.rejected == 0

    def test_bounded_queue_occupancy_never_exceeds_capacity(self):
        result = run(fade_enabled=True, event_queue_capacity=8)
        histogram = result.event_queue_stats.occupancy_histogram
        assert max(histogram) <= 8

    def test_larger_event_queue_is_no_slower(self):
        small = run(fade_enabled=True, event_queue_capacity=4)
        large = run(fade_enabled=True, event_queue_capacity=512)
        assert large.cycles <= small.cycles * 1.02


class TestTopologies:
    def test_two_core_is_no_slower_than_smt(self):
        smt = run(topology=Topology.SINGLE_CORE_SMT, fade_enabled=True)
        two = run(topology=Topology.TWO_CORE, fade_enabled=True)
        assert two.cycles <= smt.cycles * 1.02

    def test_two_core_cycle_breakdown_sums_to_total(self):
        result = run(topology=Topology.TWO_CORE, fade_enabled=True)
        breakdown = result.cycle_breakdown
        assert breakdown.total == pytest.approx(result.cycles)

    def test_core_types_order_unaccelerated(self):
        """Unaccelerated monitoring is sensitive to the core (Section 7.3)."""
        results = {
            core: run(core_type=core, fade_enabled=False, n=2500)
            for core in (CoreType.INORDER, CoreType.OOO4)
        }
        assert results[CoreType.OOO4].cycles < results[CoreType.INORDER].cycles


class TestNonBlocking:
    @pytest.mark.parametrize("monitor_name", MONITOR_NAMES)
    def test_blocking_and_nonblocking_agree_functionally(self, monitor_name):
        """Final critical metadata and bug reports are mode-independent on
        clean traces (the Section 5 equivalence)."""
        benchmark = "water" if monitor_name == "atomcheck" else "astar"
        profile = get_profile(benchmark)
        trace = generate_trace(profile, 2500, seed=13)
        outcomes = {}
        for non_blocking in (False, True):
            monitor = create_monitor(monitor_name)
            config = SystemConfig(fade_enabled=True, non_blocking=non_blocking)
            result = simulate(trace, monitor, config, profile)
            outcomes[non_blocking] = (
                monitor.critical_mem.snapshot(),
                tuple(result.reports),
            )
        assert outcomes[False][0] == outcomes[True][0]
        assert outcomes[False][1] == outcomes[True][1]

    @pytest.mark.parametrize("monitor_name", ["memleak", "taintcheck", "atomcheck"])
    def test_nonblocking_is_faster_for_low_filtering_monitors(self, monitor_name):
        benchmark = "water" if monitor_name == "atomcheck" else "astar"
        blocking = run(
            monitor=monitor_name, benchmark=benchmark,
            fade_enabled=True, non_blocking=False,
        )
        nonblocking = run(
            monitor=monitor_name, benchmark=benchmark,
            fade_enabled=True, non_blocking=True,
        )
        assert nonblocking.cycles < blocking.cycles

    def test_nonblocking_filtering_matches_blocking_on_clean_traces(self):
        blocking = run(fade_enabled=True, non_blocking=False)
        nonblocking = run(fade_enabled=True, non_blocking=True)
        assert blocking.filtering_ratio == pytest.approx(
            nonblocking.filtering_ratio, abs=0.02
        )


class TestFilteringRanges:
    """Table 2 regimes: filtering ratios stay in the paper's bands."""

    @pytest.mark.parametrize(
        "monitor_name,bench,low,high",
        [
            ("addrcheck", "bzip", 0.97, 1.0),
            ("memcheck", "hmmer", 0.90, 1.0),
            ("memleak", "hmmer", 0.90, 1.0),
            ("memleak", "astar", 0.45, 0.85),
            ("atomcheck", "water", 0.55, 0.95),
        ],
    )
    def test_filtering_band(self, monitor_name, bench, low, high):
        result = run(monitor=monitor_name, benchmark=bench, n=6000,
                     fade_enabled=True)
        assert low <= result.filtering_ratio <= high


class TestWarmup:
    def test_warmup_reports_are_discarded(self):
        profile = get_profile("astar")
        trace = generate_trace(profile, 2000, seed=5)
        monitor = create_monitor("memleak")
        simulation = MonitoringSimulation(
            trace, monitor, SystemConfig(), profile,
            warmup_items=len(trace.items) // 2,
        )
        result = simulation.run()
        # Counted statistics only cover the timed region.
        assert result.instructions < 2000
        assert result.baseline_cycles > 0

    def test_zero_warmup_counts_everything(self):
        result = run(warmup=0.0, n=1500)
        assert result.instructions == 1500


class TestStackUpdateDrain:
    def test_drain_cycles_accrue_for_call_heavy_benchmarks(self):
        """Section 5.2: stack updates wait for the unfiltered queue to
        drain; gcc's call rate makes this visible."""
        result = run(benchmark="gcc", monitor="memleak", fade_enabled=True)
        assert result.fade_drain_cycles > 0
        assert result.fade_stats.stack_updates > 0

    def test_blocking_mode_accrues_wait_cycles(self):
        result = run(monitor="memleak", fade_enabled=True, non_blocking=False)
        assert result.fade_wait_cycles > 0
