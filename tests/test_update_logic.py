"""Tests for the Non-Blocking critical-metadata update rules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fade.inv_rf import InvariantRegisterFile
from repro.fade.update_logic import (
    NonBlockCondition,
    NonBlockRule,
    UpdateSpec,
    compute_update,
)


def make_inv(values=(0, 1, 2, 3)):
    inv_rf = InvariantRegisterFile()
    inv_rf.load(values)
    return inv_rf


class TestRules:
    def test_none_rule_is_inactive(self):
        spec = UpdateSpec()
        assert not spec.is_active
        assert compute_update(spec, 1, 2, 3, make_inv()) is None

    def test_prop_s1(self):
        spec = UpdateSpec(rule=NonBlockRule.PROP_S1)
        assert compute_update(spec, 9, None, 0, make_inv()) == 9

    def test_prop_s2(self):
        spec = UpdateSpec(rule=NonBlockRule.PROP_S2)
        assert compute_update(spec, 1, 7, 0, make_inv()) == 7

    def test_compose_or_and(self):
        inv = make_inv()
        assert compute_update(
            UpdateSpec(rule=NonBlockRule.COMPOSE_OR), 0b01, 0b10, 0, inv
        ) == 0b11
        assert compute_update(
            UpdateSpec(rule=NonBlockRule.COMPOSE_AND), 0b11, 0b01, 0, inv
        ) == 0b01

    def test_compose_with_missing_source_is_identity(self):
        inv = make_inv()
        assert compute_update(
            UpdateSpec(rule=NonBlockRule.COMPOSE_OR), 5, None, 0, inv
        ) == 5
        assert compute_update(
            UpdateSpec(rule=NonBlockRule.COMPOSE_AND), None, 6, 0, inv
        ) == 6

    def test_set_const_reads_inv_register(self):
        spec = UpdateSpec(rule=NonBlockRule.SET_CONST, inv_id=2)
        assert compute_update(spec, None, None, None, make_inv((0, 1, 0x42, 3))) == 0x42


class TestConditions:
    def test_s1_eq_s2(self):
        spec = UpdateSpec(
            rule=NonBlockRule.PROP_S1, condition=NonBlockCondition.S1_EQ_S2
        )
        inv = make_inv()
        assert compute_update(spec, 4, 4, 0, inv) == 4
        assert compute_update(spec, 4, 5, 0, inv) is None

    def test_s1_ne_dest(self):
        spec = UpdateSpec(
            rule=NonBlockRule.PROP_S1, condition=NonBlockCondition.S1_NE_DEST
        )
        inv = make_inv()
        assert compute_update(spec, 4, None, 9, inv) == 4
        assert compute_update(spec, 4, None, 4, inv) is None

    def test_s1_eq_const(self):
        spec = UpdateSpec(
            rule=NonBlockRule.SET_CONST,
            condition=NonBlockCondition.S1_EQ_CONST,
            inv_id=1,
        )
        inv = make_inv((0, 7))
        assert compute_update(spec, 7, None, None, inv) == 7  # INV[1] == 7.
        assert compute_update(spec, 6, None, None, inv) is None

    def test_condition_with_missing_operand_suppresses(self):
        spec = UpdateSpec(
            rule=NonBlockRule.PROP_S1, condition=NonBlockCondition.S1_EQ_S2
        )
        assert compute_update(spec, 4, None, 0, make_inv()) is None

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_eq_and_ne_partition(self, s1, s2):
        """Property: S1_EQ_S2 and S1_NE_S2 guards are complementary."""
        inv = make_inv()
        eq = compute_update(
            UpdateSpec(rule=NonBlockRule.PROP_S1, condition=NonBlockCondition.S1_EQ_S2),
            s1, s2, 0, inv,
        )
        ne = compute_update(
            UpdateSpec(rule=NonBlockRule.PROP_S1, condition=NonBlockCondition.S1_NE_S2),
            s1, s2, 0, inv,
        )
        assert (eq is None) != (ne is None)


class TestInvRf:
    def test_out_of_range_read(self):
        from repro.common.errors import ProgrammingError

        with pytest.raises(ProgrammingError):
            make_inv().read(99)

    def test_out_of_range_value(self):
        from repro.common.errors import ProgrammingError

        with pytest.raises(ProgrammingError):
            make_inv().write(0, 256)

    def test_runtime_reprogramming_counts(self):
        inv = make_inv()
        before = inv.writes
        inv.write(0, 0x81)
        assert inv.read(0) == 0x81
        assert inv.writes == before + 1
