"""Vector-engine plumbing: NumPy gating, store keys, aliases, kernel stats.

Bit-identity of ``engine="vector"`` against the reference engines lives in
``test_engine_equivalence.py``; this module covers the tier's *packaging*
contract — the optional-NumPy degradation path (one-time RuntimeWarning,
identical results), engine separation in result-store keys, the CLI/campaign
engine aliases, and the per-kernel timing buckets.
"""

import warnings

import pytest

import repro.kernels as kernels
from repro.api.spec import RunSpec, config_from_fields
from repro.api.store import ResultStore, content_key
from repro.common.errors import ConfigurationError
from repro.monitors import create_monitor
from repro.system.config import SystemConfig
from repro.system.simulator import simulate
from repro.workload import generate_trace, get_profile


def _run(engine, **env_config):
    profile = get_profile("astar")
    trace = generate_trace(profile, 1200, seed=5)
    config = SystemConfig(engine=engine, **env_config)
    return simulate(trace, create_monitor("memcheck"), config, profile)


# ------------------------------------------------------- NumPy degradation


def test_disable_numpy_knob_is_bit_identical(monkeypatch):
    """With ``REPRO_DISABLE_NUMPY=1`` the vector engine degrades to the
    scalar event path and produces the exact same serialized result."""
    reference = _run("vector").to_dict()
    monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
    assert kernels.get_numpy() is None
    degraded = _run("vector").to_dict()
    assert degraded == reference
    assert degraded == _run("event").to_dict()


def test_disable_numpy_knob_never_warns(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
    monkeypatch.setattr(kernels, "_NUMPY_WARNING_EMITTED", False)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert kernels.get_numpy(warn=True) is None


def test_missing_numpy_warns_exactly_once(monkeypatch):
    """A genuinely missing NumPy emits one RuntimeWarning per process when
    (and only when) a caller asked for the vector engine."""
    monkeypatch.delenv("REPRO_DISABLE_NUMPY", raising=False)
    monkeypatch.setattr(kernels, "_numpy_module", None)
    monkeypatch.setattr(kernels, "_numpy_checked", True)
    monkeypatch.setattr(kernels, "_NUMPY_WARNING_EMITTED", False)
    with pytest.warns(RuntimeWarning, match="repro\\[vector\\]"):
        assert kernels.get_numpy(warn=True) is None
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert kernels.get_numpy(warn=True) is None  # warned already
        assert kernels.get_numpy() is None  # warn=False never warns


def test_missing_numpy_simulation_matches_event(monkeypatch):
    """End to end: engine="vector" with NumPy simulated-missing runs the
    event engine, warns once, and stays bit-identical."""
    reference = _run("event").to_dict()
    monkeypatch.delenv("REPRO_DISABLE_NUMPY", raising=False)
    monkeypatch.setattr(kernels, "_numpy_module", None)
    monkeypatch.setattr(kernels, "_numpy_checked", True)
    monkeypatch.setattr(kernels, "_NUMPY_WARNING_EMITTED", False)
    with pytest.warns(RuntimeWarning):
        degraded = _run("vector").to_dict()
    assert degraded == reference


def test_importing_repro_does_not_import_numpy():
    """The numpy import must stay lazy: importing the package (or building
    a non-vector simulator) in a numpy-less interpreter has to work."""
    import subprocess
    import sys

    code = (
        "import sys\n"
        "sys.modules['numpy'] = None  # poison: any import attempt raises\n"
        "import repro, repro.kernels, repro.api, repro.verify.oracle\n"
        "from repro.system.simulator import simulate\n"
        "from repro.system.config import SystemConfig\n"
        "SystemConfig(engine='event')\n"
        "print('ok')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=".",
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"


# ------------------------------------------------------- store separation


def test_store_keys_separate_engines(tmp_path):
    """Engines are part of the result-store key: a cached event-engine cell
    must never satisfy a vector-engine lookup (and vice versa), even though
    their *results* are bit-identical."""
    event_spec = RunSpec("astar", "memcheck", SystemConfig(engine="event"))
    vector_spec = event_spec.replace(config=SystemConfig(engine="vector"))
    assert content_key(event_spec) != content_key(vector_spec)

    store = ResultStore(str(tmp_path / "store"))
    result = _run("event")
    store.put(event_spec, result)
    assert store.get(vector_spec) is None
    store.put(vector_spec, result)
    assert store.get(event_spec) is not None
    assert store.get(vector_spec) is not None


# ------------------------------------------------------- aliases


def test_engine_aliases_in_config_from_fields():
    assert config_from_fields({"engine": "vec"}).engine == "vector"
    assert config_from_fields({"engine": "vectorized"}).engine == "vector"
    assert config_from_fields({"engine": "event"}).engine == "event"
    with pytest.raises(ConfigurationError, match="unknown engine"):
        config_from_fields({"engine": "warp"})


def test_unknown_engine_rejected_by_config():
    with pytest.raises(ConfigurationError):
        SystemConfig(engine="simd")


# ------------------------------------------------------- kernel buckets


def test_kernel_stats_collected_and_reported():
    numpy = kernels.get_numpy()
    if numpy is None:
        pytest.skip("requires numpy")
    kernels.reset_kernel_stats()
    _run("vector")
    counters = kernels.kernel_counters()
    assert counters.get("predict.batches", 0) > 0
    assert counters.get("predict.batch_events", 0) > 0
    timings = kernels.kernel_timings()
    assert timings.get("predict.build", 0.0) > 0.0
    report = kernels.format_kernel_report()
    assert report is not None
    assert report.startswith("vector kernel buckets:")
    assert "predict.batches" in report

    kernels.reset_kernel_stats()
    assert kernels.format_kernel_report() is None
