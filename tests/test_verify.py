"""The repro.verify subsystem: fuzzer determinism and self-contained specs,
the differential oracle (clean passes, mutation detection, shrinking), and
the coverage map's counters and steering signal.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.api import ExperimentSettings, ParallelRunner, RunSpec, execute_spec
from repro.api.cache import RunnerCache
from repro.api.store import ResultStore
from repro.common.errors import ConfigurationError
from repro.fade.pipeline import force_inline_filtering
from repro.system.config import SystemConfig
from repro.system.simulator import MonitoringSimulation
from repro.verify.coverage import COVERAGE, TRACKED_STATES, CoverageMap
from repro.verify.fuzz import (
    MONITORS,
    REGIMES,
    FuzzCase,
    WorkloadFuzzer,
    fuzz_campaign,
)
from repro.verify.oracle import (
    DifferentialOracle,
    first_divergence,
    result_digest,
)
from repro.workload.profiles import PROFILE_REGISTRY

TINY = ExperimentSettings(num_instructions=900, seed=21)


@pytest.fixture(autouse=True)
def _clean_coverage():
    """Every test starts and ends with the process-wide map off and empty."""
    COVERAGE.disable()
    COVERAGE.reset()
    yield
    COVERAGE.disable()
    COVERAGE.reset()


class TestWorkloadFuzzer:
    def test_same_seed_same_cases(self):
        a = WorkloadFuzzer(5)
        b = WorkloadFuzzer(5)
        for _ in range(20):
            case_a, case_b = a.next_case(), b.next_case()
            assert case_a.regime == case_b.regime
            assert case_a.spec == case_b.spec

    def test_different_seeds_differ(self):
        specs_a = [WorkloadFuzzer(1).next_case().spec for _ in range(1)]
        specs_b = [WorkloadFuzzer(2).next_case().spec for _ in range(1)]
        assert specs_a != specs_b

    def test_cases_are_valid_and_self_contained(self):
        fuzzer = WorkloadFuzzer(9)
        for _ in range(30):
            case = fuzzer.next_case()
            spec = case.spec
            assert spec.profile is not None
            assert spec.profile.name == spec.benchmark
            assert spec.benchmark not in PROFILE_REGISTRY
            assert spec.monitor in MONITORS
            # The profile validated in __post_init__; resolving never touches
            # the registry.
            assert spec.resolved_profile() is spec.profile

    def test_coverage_steering_shifts_weights(self):
        fuzzer = WorkloadFuzzer(3)
        case = fuzzer.next_case()
        before = fuzzer.weights()[case.regime]
        fuzzer.observe(case, ["fuse.filtered_run"])
        boosted = fuzzer.weights()[case.regime]
        assert boosted > before
        fuzzer.observe(case, [])
        assert fuzzer.weights()[case.regime] < boosted

    def test_regime_catalogue_is_stable(self):
        # The sampler must keep covering every documented regime family.
        for expected in (
            "mem_all", "mem_none", "alias_dense", "burst_gap", "inv_storm",
            "smt_edge", "queue_tiny", "stack_storm", "blocking", "no_fade",
        ):
            assert expected in REGIMES


class TestInlineProfileSpecs:
    """Satellite: fuzz profiles serialize inside the RunSpec and round-trip
    into workers — no runtime registration required anywhere."""

    def _fuzz_spec(self) -> RunSpec:
        return WorkloadFuzzer(11).next_case().spec

    def test_json_round_trip_and_hash(self):
        spec = self._fuzz_spec()
        clone = RunSpec.from_json(spec.to_json())
        assert clone == spec
        assert hash(clone) == hash(spec)
        assert clone.profile == spec.profile

    def test_plain_specs_omit_profile_key(self):
        # Store keys hash the canonical spec JSON: adding the field must not
        # invalidate every existing cache entry for registry specs.
        spec = RunSpec("astar", "memleak", SystemConfig(), TINY)
        assert "profile" not in spec.to_dict()

    def test_executes_without_registration(self):
        spec = self._fuzz_spec()
        result = execute_spec(spec, RunnerCache())
        assert result.instructions > 0

    def test_unregistered_name_without_profile_fails(self):
        spec = RunSpec("fuzz/nowhere/0", "memleak", SystemConfig(), TINY)
        with pytest.raises(ConfigurationError):
            execute_spec(spec, RunnerCache())

    def test_round_trips_into_fresh_interpreter(self, tmp_path):
        # The spawn-start concern, tested directly: a brand-new interpreter
        # (no runtime registrations, no shared memory) must reproduce the
        # parent's result bit-for-bit from the spec JSON alone.
        spec = self._fuzz_spec()
        expected = result_digest(execute_spec(spec, RunnerCache()))
        script = (
            "import json, sys\n"
            "from repro.api import RunSpec, execute_spec\n"
            "from repro.verify.oracle import result_digest\n"
            "spec = RunSpec.from_json(sys.stdin.read())\n"
            "print(result_digest(execute_spec(spec)))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(__file__), os.pardir, "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            input=spec.to_json(),
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert completed.stdout.strip() == expected

    def test_parallel_runner_executes_inline_profiles(self):
        fuzzer = WorkloadFuzzer(17)
        specs = [fuzzer.next_case().spec for _ in range(4)]
        serial = [execute_spec(spec, RunnerCache()) for spec in specs]
        parallel = ParallelRunner(jobs=2).run(specs)
        assert [result_digest(r) for r in parallel.results] == [
            result_digest(r) for r in serial
        ]


class TestDifferentialOracle:
    def test_clean_pass_on_registered_benchmark(self):
        spec = RunSpec("astar", "memleak", SystemConfig(), TINY)
        assert DifferentialOracle(thorough=False).check(spec) is None

    def test_clean_pass_on_fuzzed_specs(self):
        oracle = DifferentialOracle(thorough=False)
        fuzzer = WorkloadFuzzer(23)
        for _ in range(3):
            assert oracle.check(fuzzer.next_case().spec) is None

    def test_thorough_includes_parallel_legs(self):
        spec = RunSpec("astar", "addrcheck", SystemConfig(), TINY)
        oracle = DifferentialOracle(thorough=True)
        assert oracle.check(spec) is None
        digests, _ = oracle._all_legs(spec)
        assert "event/parallel/memo/cold" in digests
        assert "naive/parallel/inline/cold" in digests
        assert "event/serial/memo/warm" in digests
        assert len(set(digests.values())) == 1

    def test_first_divergence_paths(self):
        spec = RunSpec("astar", "memleak", SystemConfig(), TINY)
        result = execute_spec(spec, RunnerCache())
        clone = execute_spec(spec, RunnerCache())
        assert first_divergence(result, clone) == ""
        clone.cycles += 1.0
        assert first_divergence(result, clone) == "cycles"


@pytest.mark.skipif(
    force_inline_filtering(),
    reason="mutation lives in the fused path, disabled under forced inline",
)
class TestMutationDetection:
    """Acceptance criterion: a deliberately injected off-by-one in
    ``_fused_drain`` is caught by the oracle with a shrunken repro of at
    most 2000 instructions."""

    def test_fused_drain_off_by_one_is_caught_and_shrunk(self, monkeypatch):
        original = MonitoringSimulation._fused_drain

        def off_by_one(self):
            fused = original(self)
            if fused and not getattr(self, "_mutation_applied", False):
                self._mutation_applied = True
                self._now += 1  # One extra cycle on the first fused window.
            return fused

        monkeypatch.setattr(MonitoringSimulation, "_fused_drain", off_by_one)
        oracle = DifferentialOracle(thorough=False)
        fuzzer = WorkloadFuzzer(0)
        mismatch = None
        for _ in range(10):
            mismatch = oracle.check(fuzzer.next_case().spec)
            if mismatch is not None:
                break
        assert mismatch is not None, "oracle missed the injected off-by-one"
        assert mismatch.shrunk_instructions <= 2000
        assert mismatch.divergence != ""
        assert mismatch.digest_a != mismatch.digest_b
        # The artifact the CLI writes must round-trip back into specs.
        artifact = mismatch.to_dict()
        assert RunSpec.from_dict(artifact["shrunk_spec"]).settings
        assert artifact["leg_a"] != artifact["leg_b"]

    def test_mutation_gone_after_restore(self):
        spec = RunSpec("astar", "memleak", SystemConfig(), TINY)
        assert DifferentialOracle(thorough=False).check(spec) is None


class TestCoverageMap:
    def test_disabled_by_default_and_inert(self):
        assert not COVERAGE.enabled
        execute_spec(
            RunSpec("astar", "memleak", SystemConfig(), TINY), RunnerCache()
        )
        assert COVERAGE.snapshot() == {}

    @pytest.mark.skipif(
        force_inline_filtering(), reason="memo states need the memo enabled"
    )
    def test_default_cell_hits_core_states(self):
        COVERAGE.enable()
        execute_spec(
            RunSpec("astar", "memleak", SystemConfig(), TINY), RunnerCache()
        )
        hit = set(COVERAGE.hit_states())
        for state in (
            "engine.skip",
            "engine.step",
            "fuse.filtered_run",
            "memo.value_hit",
            "memo.miss",
            "run.warmup",
            "eq.empty",
        ):
            assert state in hit, f"{state} not reached by a default cell"

    def test_enabling_does_not_change_results(self):
        spec = RunSpec("astar", "memcheck", SystemConfig(), TINY)
        baseline = result_digest(execute_spec(spec, RunnerCache()))
        COVERAGE.enable()
        instrumented = result_digest(execute_spec(spec, RunnerCache()))
        assert instrumented == baseline

    def test_fraction_and_new_states(self):
        cov = CoverageMap()
        assert cov.fraction() == 0.0
        cov.hit(TRACKED_STATES[0])
        cov.hit("extra.untracked")
        assert cov.hit_states() == [TRACKED_STATES[0]]
        assert cov.fraction() == pytest.approx(1.0 / len(TRACKED_STATES))
        assert cov.new_states([]) == [TRACKED_STATES[0]]
        assert cov.new_states([TRACKED_STATES[0]]) == []
        assert "extra.untracked" in cov.snapshot()


class TestFuzzCampaign:
    def test_small_campaign_is_clean_and_covers(self):
        report = fuzz_campaign(budget=6, seed=7, thorough=False)
        assert report.ok
        assert report.cases_run == 6
        assert report.coverage_fraction > 0.3
        assert sum(report.regime_counts.values()) == 6
        assert "zero differential mismatches" in report.summary()
        # The campaign leaves the process-wide map disabled again.
        assert not COVERAGE.enabled

    def test_time_budget_stops_early(self):
        report = fuzz_campaign(budget=10_000, seed=7, seconds=0.0, thorough=False)
        assert report.cases_run == 0


class TestReadonlyStore:
    """Satellite: the verification commands' opt-out — a readonly store
    serves reads but never writes (and never creates directories)."""

    def test_put_is_noop_and_no_mkdir(self, tmp_path):
        target = tmp_path / "user-cache"
        store = ResultStore(target, readonly=True)
        spec = RunSpec("astar", "memleak", SystemConfig(), TINY)
        result = execute_spec(spec, RunnerCache())
        store.put(spec, result)
        assert not target.exists()
        assert store.get(spec) is None

    def test_readonly_never_heals_corrupt_entries(self, tmp_path):
        # Deleting a corrupt entry is a write too: a readonly store reports
        # the miss but leaves the user's file untouched.
        spec = RunSpec("astar", "memleak", SystemConfig(), TINY)
        writer = ResultStore(tmp_path / "cache")
        entry = writer._entry_path(writer.key(spec))
        entry.parent.mkdir(parents=True, exist_ok=True)
        entry.write_text("{truncated")
        reader = ResultStore(tmp_path / "cache", readonly=True)
        assert reader.get(spec) is None
        assert entry.exists()
        assert writer.get(spec) is None  # A writable store self-heals...
        assert not entry.exists()  # ...by deleting the corrupt entry.

    def test_reads_still_served(self, tmp_path):
        spec = RunSpec("astar", "memleak", SystemConfig(), TINY)
        writer = ResultStore(tmp_path / "cache")
        result = execute_spec(spec, RunnerCache())
        writer.put(spec, result)
        reader = ResultStore(tmp_path / "cache", readonly=True)
        hit = reader.get(spec)
        assert hit is not None
        assert result_digest(hit) == result_digest(result)
