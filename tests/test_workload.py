"""Tests for the workload substrate: profiles, heap/stack models, generator
determinism and cleanliness, trace serialisation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.common.units import WORD_SIZE
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.workload import (
    BenchmarkProfile,
    HeapModel,
    Trace,
    TraceGenerator,
    benchmark_names,
    generate_trace,
    get_profile,
)
from repro.workload.generator import POINTER_REG_MAX
from repro.workload.profiles import PARALLEL_BENCHMARKS, SPEC_BENCHMARKS
from repro.workload.stack import CallStackModel
from repro.workload.trace import HighLevelEvent, HighLevelKind


class TestProfiles:
    def test_all_registered_profiles_are_valid(self):
        for name in benchmark_names():
            profile = get_profile(name)
            assert profile.mix_total > 0
            assert 0 < profile.memory_fraction < 1

    def test_unknown_profile_raises(self):
        with pytest.raises(ConfigurationError):
            get_profile("not-a-benchmark")

    def test_parallel_profiles_have_threads(self):
        for name in PARALLEL_BENCHMARKS:
            profile = get_profile(name)
            assert profile.parallel and profile.num_threads == 4

    def test_sequential_profiles_are_single_threaded(self):
        for name in SPEC_BENCHMARKS:
            assert not get_profile(name).parallel

    def test_probability_fields_validated(self):
        with pytest.raises(ConfigurationError):
            BenchmarkProfile(name="bad", locality=1.5)

    def test_parallel_needs_time_slice(self):
        with pytest.raises(ConfigurationError):
            BenchmarkProfile(
                name="bad", parallel=True, num_threads=4, thread_switch_period=0
            )


class TestHeapModel:
    def test_malloc_free_reuse(self):
        heap = HeapModel(DeterministicRng(1))
        first = heap.malloc(64)
        heap.free(first)
        second = heap.malloc(32)
        assert second.base == first.base  # Freed space is reused.

    def test_live_accounting(self):
        heap = HeapModel(DeterministicRng(1))
        heap.malloc(64)
        heap.malloc(128)
        assert heap.live_bytes == 192
        heap.free_random()
        assert heap.total_freed == 1

    def test_word_alignment(self):
        heap = HeapModel(DeterministicRng(1))
        allocation = heap.malloc(5)
        assert allocation.size % WORD_SIZE == 0

    def test_free_random_on_empty_heap(self):
        assert HeapModel(DeterministicRng(1)).free_random() is None


class TestCallStackModel:
    def test_grows_down(self):
        stack = CallStackModel(DeterministicRng(1))
        outer = stack.call(64)
        inner = stack.call(64)
        assert inner.base < outer.base

    def test_return_restores_pointer(self):
        stack = CallStackModel(DeterministicRng(1))
        outer = stack.call(64)
        stack.call(32)
        stack.ret()
        again = stack.call(32)
        assert again.base == outer.base - 32

    def test_depth_bound(self):
        stack = CallStackModel(DeterministicRng(1), max_depth=2)
        stack.call(16)
        stack.call(16)
        assert not stack.can_call
        assert stack.can_return


class TestGenerator:
    def test_deterministic_for_same_seed(self):
        first = generate_trace(get_profile("astar"), 2000, seed=3)
        second = generate_trace(get_profile("astar"), 2000, seed=3)
        assert first.items == second.items

    def test_different_seeds_differ(self):
        first = generate_trace(get_profile("astar"), 2000, seed=3)
        second = generate_trace(get_profile("astar"), 2000, seed=4)
        assert first.items != second.items

    def test_exact_instruction_count(self):
        trace = generate_trace(get_profile("gcc"), 1500, seed=1)
        assert trace.num_instructions == 1500

    def test_ends_with_program_exit(self):
        trace = generate_trace(get_profile("gcc"), 500, seed=1)
        last = trace.items[-1]
        assert isinstance(last, HighLevelEvent)
        assert last.kind is HighLevelKind.PROGRAM_EXIT

    def test_startup_events_are_marked(self):
        trace = generate_trace(get_profile("astar"), 500, seed=1)
        first = trace.items[0]
        assert first.kind is HighLevelKind.MALLOC and first.startup

    def test_calls_and_returns_balance_within_depth(self):
        trace = generate_trace(get_profile("gcc"), 5000, seed=2)
        depth = 0
        for instruction in trace.instructions():
            if instruction.op_class is OpClass.CALL:
                depth += 1
            elif instruction.op_class is OpClass.RETURN:
                depth -= 1
            assert depth >= 0

    def test_mix_roughly_matches_profile(self):
        profile = get_profile("bzip")
        trace = generate_trace(profile, 20_000, seed=5)
        loads = sum(1 for i in trace.instructions() if i.op_class is OpClass.LOAD)
        expected = profile.load_weight / profile.mix_total
        assert abs(loads / 20_000 - expected) < 0.05

    def test_parallel_trace_has_thread_switches(self):
        trace = generate_trace(get_profile("water"), 12_000, seed=1)
        switches = [
            event
            for event in trace.high_level_events()
            if event.kind is HighLevelKind.THREAD_SWITCH
        ]
        assert len(switches) >= 2
        threads = {instruction.thread for instruction in trace.instructions()}
        assert threads == {0, 1, 2, 3}

    def test_sequential_trace_is_single_threaded(self):
        trace = generate_trace(get_profile("astar"), 2000, seed=1)
        assert all(i.thread == 0 for i in trace.instructions())

    def test_malloc_register_is_in_pointer_partition(self):
        trace = generate_trace(get_profile("omnetpp"), 8000, seed=1)
        for event in trace.high_level_events():
            if event.kind is HighLevelKind.MALLOC and not event.startup:
                assert 1 <= event.register <= POINTER_REG_MAX

    def test_fp_instructions_have_no_destination(self):
        trace = generate_trace(get_profile("water"), 4000, seed=1)
        for instruction in trace.instructions():
            if instruction.op_class is OpClass.FP:
                assert instruction.dest is None


class TestTraceSerialisation:
    def test_jsonl_roundtrip(self):
        trace = generate_trace(get_profile("astar"), 300, seed=9)
        restored = Trace.from_jsonl(trace.to_jsonl())
        assert restored.items == trace.items
        assert restored.name == trace.name
        assert restored.seed == trace.seed

    def test_concat(self):
        first = generate_trace(get_profile("astar"), 100, seed=1)
        second = generate_trace(get_profile("astar"), 100, seed=2)
        combined = first.concat(second)
        assert len(combined) == len(first) + len(second)
